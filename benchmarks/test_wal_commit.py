"""Experiment: WAL commit cost and group-commit scaling.

Measures what durability charges per commit and what group commit buys
back under concurrency:

* **latency** — single-writer per-commit wall time for
  ``durability="off"`` (the pre-WAL baseline), ``"commit"`` (an fsync
  per commit) and ``"batch"`` (group commit);
* **throughput** — total commits/sec at 1, 8 and 32 concurrent
  writers, ``commit`` vs ``batch``: with per-commit fsyncs every
  committer queues behind the disk flush, while the batch leader
  amortizes one fsync over every committer that arrived meanwhile.

The headline assertion — batch ≥ 3× per-commit-fsync throughput at 32
writers — is only meaningful where an fsync actually costs something:
the suite first probes raw fsync latency, and on filesystems where it
is ~free (tmpfs CI runners, some overlayfs setups) records a
``fast_fsync`` marker in the artifact and skips the floor, mirroring
the ``insufficient_cpus`` precedent in the parallel-kernel benches.

JSON artifact: ``BENCH_wal.json`` at the repo root.

Environment knobs:

* ``REPRO_BENCH_WAL_COMMITS`` — single-writer commits per policy
  (default 200; also scales the per-writer counts);
* ``REPRO_BENCH_WAL_OUT`` — output path for ``BENCH_wal.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro import Database

COMMITS = int(os.environ.get("REPRO_BENCH_WAL_COMMITS", "200"))
WRITER_COUNTS = (1, 8, 32)
#: Below this mean fsync cost the device gives durability away and
#: group commit has nothing to amortize.
FAST_FSYNC_S = 150e-6
OUT_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_WAL_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_wal.json",
    )
)


def _percentile(latencies: list[float], q: float) -> float:
    return float(np.percentile(np.array(latencies), q)) if latencies else 0.0


def _fsync_probe(directory: str, rounds: int = 120) -> float:
    """Mean seconds per fsync of a small append on this filesystem."""
    path = os.path.join(directory, "probe.bin")
    with open(path, "wb") as handle:
        handle.write(b"\x00" * 256)
        start = time.perf_counter()
        for i in range(rounds):
            handle.write(b"x" * 64)
            handle.flush()
            os.fsync(handle.fileno())
        elapsed = time.perf_counter() - start
    return elapsed / rounds


def _open(durability: str, directory: str) -> Database:
    if durability == "off":
        return Database()
    return Database.open(
        os.path.join(directory, "db"), durability=durability
    )


def _latency_run(durability: str) -> dict:
    directory = tempfile.mkdtemp(prefix="walbench-")
    try:
        db = _open(durability, directory)
        db.execute("CREATE TABLE t (a INT, b VARCHAR)")
        latencies = []
        for i in range(COMMITS):
            start = time.perf_counter()
            db.execute(f"INSERT INTO t VALUES ({i}, 'payload-{i}')")
            latencies.append(time.perf_counter() - start)
        db.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    total = sum(latencies)
    return {
        "commits": len(latencies),
        "p50_us": round(_percentile(latencies, 50) * 1e6, 1),
        "p99_us": round(_percentile(latencies, 99) * 1e6, 1),
        "commits_per_s": int(len(latencies) / total) if total else None,
    }


def _throughput_run(durability: str, writers: int) -> float:
    """Total commits/sec; each writer appends to its own table so the
    only shared resource is the log + its fsync."""
    # enough commits per writer for the coalescing windows to settle —
    # a writer that exits after a handful of commits never contends
    per_writer = max(12, COMMITS // 8)
    directory = tempfile.mkdtemp(prefix="walbench-")
    try:
        db = _open(durability, directory)
        for w in range(writers):
            db.execute(f"CREATE TABLE w{w} (a INT)")
        barrier = threading.Barrier(writers)
        errors: list = []

        def run(w: int) -> None:
            try:
                sql = f"INSERT INTO w{w} VALUES (?)"  # plan-cache hit
                barrier.wait()
                for i in range(per_writer):
                    db.execute(sql, (i,))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(w,)) for w in range(writers)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        assert not errors, errors
        for w in range(writers):
            count = db.execute(f"SELECT count(*) FROM w{w}").scalar()
            assert count == per_writer
        db.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return (writers * per_writer) / wall if wall else 0.0


class TestWalCommit:
    def test_commit_latency_and_group_commit_throughput(self, capsys):
        probe_dir = tempfile.mkdtemp(prefix="walbench-probe-")
        try:
            fsync_s = _fsync_probe(probe_dir)
        finally:
            shutil.rmtree(probe_dir, ignore_errors=True)
        fast_fsync = fsync_s < FAST_FSYNC_S

        latency = {
            policy: _latency_run(policy)
            for policy in ("off", "commit", "batch")
        }
        throughput: dict = {}
        for writers in WRITER_COUNTS:
            commit_tps = _throughput_run("commit", writers)
            batch_tps = _throughput_run("batch", writers)
            throughput[str(writers)] = {
                "commit_per_s": int(commit_tps),
                "batch_per_s": int(batch_tps),
                "speedup": round(batch_tps / commit_tps, 2)
                if commit_tps
                else None,
            }

        report = {
            "benchmark": "wal_commit",
            "commits": COMMITS,
            "fsync_probe_us": round(fsync_s * 1e6, 1),
            "fast_fsync": fast_fsync,
            "latency": latency,
            "throughput": throughput,
        }
        OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
        with capsys.disabled():
            top = throughput[str(WRITER_COUNTS[-1])]
            print(
                f"\nwal: fsync {report['fsync_probe_us']}us"
                f" | off p50 {latency['off']['p50_us']}us"
                f" | commit p50 {latency['commit']['p50_us']}us"
                f" | batch p50 {latency['batch']['p50_us']}us"
                f" | 32w commit {top['commit_per_s']}/s"
                f" batch {top['batch_per_s']}/s"
                f" (x{top['speedup']})"
                + (" [fast fsync: floor skipped]" if fast_fsync else "")
            )

        # structural sanity at any scale
        for policy in ("off", "commit", "batch"):
            assert latency[policy]["commits"] == COMMITS
        # the headline floor: group commit must amortize the fsync —
        # only where the fsync is the bottleneck (real disk barriers)
        # and at full scale (reduced smoke runs are too noisy to gate)
        if not fast_fsync and COMMITS >= 200:
            top = throughput[str(WRITER_COUNTS[-1])]
            assert top["speedup"] >= 3.0, (
                f"group commit speedup {top['speedup']} < 3.0 at "
                f"{WRITER_COUNTS[-1]} writers (fsync {fsync_s * 1e6:.0f}us)"
            )
