"""Experiment: served throughput — many concurrent clients over TCP.

``REPRO_BENCH_CLIENTS`` socket clients hammer one :class:`ServerThread`
with the canonical OLTP-ish mix — point lookups through a prepared
statement and a small grouped join — and every statement's wall latency
is recorded.  The JSON artifact (``BENCH_server.json`` at the repo
root) carries per-op p50/p99 latency and aggregate statements/sec, the
service-layer numbers the admission-control design is accountable to.

This is a *service overhead* benchmark: the engine work per statement
is tiny by construction, so the recorded latencies are dominated by
framing, dispatch, admission and the executor hop — exactly the layers
:mod:`repro.server` adds over the in-process API.

Environment knobs:

* ``REPRO_BENCH_CLIENTS`` — concurrent client connections (default 8);
* ``REPRO_BENCH_SERVER_STMTS`` — statements per client (default 100);
* ``REPRO_BENCH_SERVER_ROWS`` — fact-table size (default 20_000);
* ``REPRO_BENCH_SERVER_OUT`` — output path for ``BENCH_server.json``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro import Database
from repro.client import Client
from repro.server import ServerThread

CLIENTS = int(os.environ.get("REPRO_BENCH_CLIENTS", "8"))
STATEMENTS = int(os.environ.get("REPRO_BENCH_SERVER_STMTS", "100"))
ROWS = int(os.environ.get("REPRO_BENCH_SERVER_ROWS", str(20_000)))
GROUPS = 100
OUT_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_SERVER_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_server.json",
    )
)


def _percentile(latencies: list[float], q: float) -> float:
    return float(np.percentile(np.array(latencies), q)) if latencies else 0.0


def _build_database() -> Database:
    rng = np.random.default_rng(20260807)
    db = Database()
    db.execute("CREATE TABLE kv (k BIGINT, grp BIGINT, v DOUBLE)")
    db.table("kv").insert_rows(
        [
            (int(k), int(k) - (int(k) // GROUPS) * GROUPS, float(v))
            for k, v in zip(range(ROWS), rng.random(ROWS))
        ]
    )
    db.execute("CREATE TABLE dims (grp BIGINT, label VARCHAR)")
    db.table("dims").insert_rows([(g, f"g{g}") for g in range(GROUPS)])
    db.execute("ANALYZE")
    return db


def _client_run(host: str, port: int, cid: int, latencies: dict, errors: list):
    """One client's statement loop: mostly point lookups through a
    prepared statement, every 10th statement the small grouped join."""
    rng = np.random.default_rng(1000 + cid)
    keys = rng.integers(0, ROWS, size=STATEMENTS)
    point_lat: list[float] = []
    join_lat: list[float] = []
    try:
        with Client(host, port, timeout=120) as client:
            lookup = client.prepare("SELECT v FROM kv WHERE k = ?")
            join_sql = (
                "SELECT d.label, count(*), sum(kv.v) FROM kv "
                "JOIN dims d ON kv.grp = d.grp "
                "WHERE kv.k < ? GROUP BY d.label ORDER BY d.label"
            )
            for i in range(STATEMENTS):
                if i % 10 == 9:
                    start = time.perf_counter()
                    result = client.execute(join_sql, (int(keys[i]) + 1,))
                    join_lat.append(time.perf_counter() - start)
                    assert result.is_query
                else:
                    start = time.perf_counter()
                    value = lookup.execute((int(keys[i]),)).scalar()
                    point_lat.append(time.perf_counter() - start)
                    assert value is not None
    except Exception as exc:  # noqa: BLE001 - surfaced as a test failure
        errors.append((cid, exc))
    latencies[cid] = (point_lat, join_lat)


class TestServerThroughput:
    def test_many_clients_mixed_workload(self, capsys):
        db = _build_database()
        latencies: dict[int, tuple[list, list]] = {}
        errors: list = []
        with ServerThread(db, max_queue=max(8, 2 * CLIENTS)) as st:
            host, port = st.address
            threads = [
                threading.Thread(
                    target=_client_run, args=(host, port, cid, latencies, errors)
                )
                for cid in range(CLIENTS)
            ]
            wall_start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600)
            wall = time.perf_counter() - wall_start
            stats = st.server.stats()
        db.close()
        assert not errors, errors
        assert len(latencies) == CLIENTS

        point = [s for p, _ in latencies.values() for s in p]
        join = [s for _, j in latencies.values() for s in j]
        total = len(point) + len(join)
        report = {
            "benchmark": "server_throughput",
            "clients": CLIENTS,
            "statements_per_client": STATEMENTS,
            "rows": ROWS,
            "statements_total": total,
            "statements_per_s": int(total / wall) if wall else None,
            "wall_seconds": round(wall, 4),
            "admission": stats["admission"],
            "ops": {
                "point_lookup": {
                    "count": len(point),
                    "p50_ms": round(_percentile(point, 50) * 1000, 3),
                    "p99_ms": round(_percentile(point, 99) * 1000, 3),
                },
                "small_join": {
                    "count": len(join),
                    "p50_ms": round(_percentile(join, 50) * 1000, 3),
                    "p99_ms": round(_percentile(join, 99) * 1000, 3),
                },
            },
        }
        OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
        with capsys.disabled():
            point_stats = report["ops"]["point_lookup"]
            join_stats = report["ops"]["small_join"]
            print(
                f"\nserver: {CLIENTS} clients | {report['statements_per_s']} stmt/s"
                f" | lookup p50 {point_stats['p50_ms']:.2f}ms"
                f" p99 {point_stats['p99_ms']:.2f}ms"
                f" | join p50 {join_stats['p50_ms']:.2f}ms"
                f" p99 {join_stats['p99_ms']:.2f}ms"
            )
        # sanity floor, not a perf assertion: every statement answered,
        # none rejected (the queue was sized to the client count)
        assert total == CLIENTS * STATEMENTS
        assert report["admission"]["rejected"] == 0
