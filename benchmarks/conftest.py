"""Shared benchmark fixtures.

The paper's testbed is a 16-core Xeon running MonetDB (C code) on LDBC
scale factors 1-300.  Our substrate is a pure-Python engine, so the
benchmarks run on graphs shrunk by ``BENCH_SCALE`` (same shape: Table 1
vertex/edge ratios, skewed degrees, doubled directed edges).  Absolute
numbers are not comparable to the paper; the *relationships* between
series (weighted vs unweighted, per-pair cost vs batch size, who wins)
are what the suite checks and reports.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — global shrink factor (default 0.01);
* ``REPRO_BENCH_SFS`` — comma-separated scale factors (default 1,3,10,30).
"""

from __future__ import annotations

import os

import pytest

from repro.ldbc import generate, make_database

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.01"))
SCALE_FACTORS = tuple(
    int(s) for s in os.environ.get("REPRO_BENCH_SFS", "1,3,10,30").split(",")
)


@pytest.fixture(scope="session")
def networks():
    """scale factor -> generated SocialNetwork (session-cached)."""
    return {sf: generate(sf, scale=BENCH_SCALE) for sf in SCALE_FACTORS}


@pytest.fixture(scope="session")
def databases(networks):
    """scale factor -> loaded Database (session-cached)."""
    return {sf: make_database(network) for sf, network in networks.items()}
