"""Experiment: Table 1 — size of the graph at different scale factors.

Paper numbers (vertices x10^3 / edges x10^3): SF1 9.892/362, SF3 24/1132,
SF10 65/3894, SF30 165/12115, SF100 448/39998, SF300 1128/119225.

Our generator reproduces the same vertex/edge counts scaled by
BENCH_SCALE; this module prints the regenerated table and checks the
between-scale-factor ratios against the paper, then benchmarks the data
generation itself.
"""

import pytest

from repro.harness import format_table, table1
from repro.ldbc import TABLE1_SIZES, generate

from conftest import BENCH_SCALE, SCALE_FACTORS


def test_table1_reproduction_report(capsys):
    rows = table1(scale_factors=SCALE_FACTORS, scale=BENCH_SCALE)
    with capsys.disabled():
        print("\n=== Table 1 (scaled by %.4g) ===" % BENCH_SCALE)
        print(
            format_table(
                rows,
                columns=(
                    "scale_factor",
                    "vertices",
                    "edges",
                    "paper_vertices",
                    "paper_edges",
                ),
            )
        )
    # the shape check: our vertex/edge counts track the paper's within 5%
    for row in rows:
        assert row["vertices"] == pytest.approx(
            row["paper_vertices"] * BENCH_SCALE, rel=0.05, abs=3
        )
        assert row["edges"] == pytest.approx(
            row["paper_edges"] * BENCH_SCALE, rel=0.05, abs=6
        )


def test_table1_edge_density_grows_like_paper():
    # the paper's avg degree rises from ~37 (SF1) to ~106 (SF300); the
    # scaled graphs must preserve the same density trend
    degrees = {}
    for sf in SCALE_FACTORS:
        network = generate(sf, scale=BENCH_SCALE)
        degrees[sf] = network.num_directed_edges / network.num_persons
    paper_degrees = {
        sf: TABLE1_SIZES[sf][1] / TABLE1_SIZES[sf][0] for sf in SCALE_FACTORS
    }
    ordered = sorted(SCALE_FACTORS)
    for small, large in zip(ordered, ordered[1:]):
        if paper_degrees[large] > paper_degrees[small]:
            assert degrees[large] > degrees[small] * 0.9


@pytest.mark.parametrize("sf", SCALE_FACTORS)
def test_bench_datagen(benchmark, sf):
    """Time to synthesize one social network per scale factor."""
    benchmark(lambda: generate(sf, scale=BENCH_SCALE))
