"""Ablation A4: graph indices (the paper's Section 6 future work).

"To mitigate this scenario, we are investigating how to expand our
system with the option of creating special 'graph' indices.  These
indices will store the full graph, ready to be used when a query matches
the edge table that generated the graph."

We implemented them (CREATE GRAPH INDEX); this ablation measures the
effect on single-pair Q13 — the scenario the paper says suffers most
from per-query graph construction.
"""

import pytest

from repro.ldbc import generate, make_database, random_pairs, run_q13

from conftest import BENCH_SCALE, SCALE_FACTORS

INDEX_SF = max(SCALE_FACTORS)


def _fresh_db():
    network = generate(INDEX_SF, scale=BENCH_SCALE)
    return network, make_database(network)


@pytest.fixture(scope="module")
def without_index():
    return _fresh_db()


@pytest.fixture(scope="module")
def with_index():
    network, db = _fresh_db()
    db.execute("CREATE GRAPH INDEX knows_idx ON knows EDGE (person1, person2)")
    return network, db


def _runner(network, db, seed):
    pairs = random_pairs(network, 32, seed=seed)
    state = {"i": 0}

    def one_query():
        source, dest = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return run_q13(db, source, dest)

    return one_query


def test_bench_q13_without_index(benchmark, without_index):
    network, db = without_index
    benchmark(_runner(network, db, seed=71))


def test_bench_q13_with_index(benchmark, with_index):
    network, db = with_index
    benchmark(_runner(network, db, seed=71))


def test_index_gives_same_answers(without_index, with_index):
    plain_network, plain_db = without_index
    _, indexed_db = with_index
    for source, dest in random_pairs(plain_network, 12, seed=72):
        assert run_q13(plain_db, source, dest) == run_q13(indexed_db, source, dest)


def test_index_speeds_up_single_pair(without_index, with_index, capsys):
    import time

    def average(network, db, seed, repeats=10):
        run = _runner(network, db, seed)
        start = time.perf_counter()
        for _ in range(repeats):
            run()
        return (time.perf_counter() - start) / repeats

    plain = average(*without_index, seed=73)
    indexed = average(*with_index, seed=73)
    with capsys.disabled():
        print(
            f"\n=== A4 graph index (SF {INDEX_SF}) === "
            f"plain {plain * 1000:.2f} ms vs indexed {indexed * 1000:.2f} ms "
            f"({plain / max(indexed, 1e-9):.1f}x)"
        )
    # skipping the per-query CSR build must help substantially
    assert indexed < plain
