"""Experiment: multi-worker shortest-path throughput on the Fig. 1b
batch workload.

The paper runs its batch experiment single-threaded; this benchmark
measures what the concurrency subsystem adds on top: the batch of
<source, destination> pairs is partitioned by source group across a
thread pool (``GraphLibrary.solve_encoded(workers=...)``), so one large
statement uses several cores for the traversal phase.

Two checks:

* **correctness** — every worker count returns bit-identical results
  (this always runs and must hold on any machine);
* **throughput** — ≥ 1.5× at 4 workers vs 1 worker.  Thread-level
  speedup needs actual cores: the assertion only applies when the
  machine exposes ≥ 4 usable CPUs (the numbers are printed either way,
  so single-core CI still exercises and reports the parallel path).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.graph import PARALLEL_MIN_PAIRS, GraphLibrary
from repro.ldbc import random_pairs

from conftest import SCALE_FACTORS

WORKER_COUNTS = (1, 2, 4)
BATCH_PAIRS = 192
# best-of-N timing: high enough that a loaded CI machine's scheduling
# noise doesn't flip the (already core-count-gated) assertions
REPEATS = 5


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def workload(networks, databases):
    """(library, encoded sources, encoded dests) at the largest bench SF."""
    sf = max(SCALE_FACTORS)
    network = networks[sf]
    db = databases[sf]
    knows = db.table("knows")
    library = GraphLibrary(
        knows.column("person1").data, knows.column("person2").data
    )
    pairs = random_pairs(network, BATCH_PAIRS, seed=1234)
    sources = np.asarray([a for a, _ in pairs], dtype=np.int64)
    dests = np.asarray([b for _, b in pairs], dtype=np.int64)
    src_ids, dst_ids, _ = library.encode_endpoints(sources, dests)
    assert len(src_ids) >= PARALLEL_MIN_PAIRS, "batch too small to parallelize"
    return library, src_ids, dst_ids


def _run_once(workload, workers: int):
    library, src_ids, dst_ids = workload
    return library.solve_encoded(
        src_ids, dst_ids, want_cost=True, workers=workers
    )


class TestParallelPaths:
    def test_results_identical_across_worker_counts(self, workload):
        base = _run_once(workload, 1)
        for workers in WORKER_COUNTS[1:]:
            result = _run_once(workload, workers)
            assert np.array_equal(base.connected, result.connected)
            assert np.array_equal(base.costs, result.costs)

    def test_worker_scaling_report(self, workload, capsys):
        throughput: dict[int, float] = {}
        for workers in WORKER_COUNTS:
            _run_once(workload, workers)  # warm-up (reverse CSR, caches)
            best = float("inf")
            for _ in range(REPEATS):
                start = time.perf_counter()
                _run_once(workload, workers)
                best = min(best, time.perf_counter() - start)
            throughput[workers] = BATCH_PAIRS / best
        cpus = _usable_cpus()
        with capsys.disabled():
            print("\n=== parallel shortest-path throughput (pairs/s) ===")
            print(f"usable CPUs: {cpus}, batch: {BATCH_PAIRS} pairs")
            for workers, pairs_per_s in throughput.items():
                speedup = pairs_per_s / throughput[1]
                print(f"  workers={workers}: {pairs_per_s:10.1f}  ({speedup:.2f}x)")
        if cpus >= 4:
            assert throughput[4] >= 1.5 * throughput[1], (
                f"4-worker throughput did not reach 1.5x: {throughput}"
            )
        else:
            # no cores to scale onto; the parallel path must at least not
            # collapse (thread overhead bounded)
            assert throughput[4] >= 0.5 * throughput[1], (
                f"parallel path overhead too high on {cpus} CPU(s): {throughput}"
            )

    def test_parallel_threshold_keeps_small_batches_serial(self, workload):
        library, src_ids, dst_ids = workload
        few = max(2, PARALLEL_MIN_PAIRS // 4)
        result = library.solve_encoded(
            src_ids[:few], dst_ids[:few], want_cost=True, workers=4
        )
        serial = library.solve_encoded(
            src_ids[:few], dst_ids[:few], want_cost=True, workers=1
        )
        assert np.array_equal(result.costs, serial.costs)
