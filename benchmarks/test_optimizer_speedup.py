"""Experiment: cost-based optimizer wins on the LDBC workload.

Two measurements over the same generated social network, comparing the
full optimizer (``Database()``) against the legacy-rewriter baseline
(``Database(optimizer=False)``):

* **graph pushdown** — the Figure-1b batch query wrapped in a derived
  table with a selective predicate on the *source* endpoints.  The
  optimizer pushes the predicate through the projection into the graph
  select's input, so the runtime solves shortest paths only for the
  qualifying pairs; the baseline solves the whole batch and filters
  afterwards.
* **join reordering** — a three-relation join written in a bad
  syntactic order (``persons × persons`` first).  The baseline
  materializes the cross product; the optimizer reorders so both joins
  are equi hash joins.

Correctness is asserted on every run (both plans must return identical
results); the speedup assertions require the optimized plan to beat the
unoptimized one.
"""

from __future__ import annotations

import time

import pytest

from repro import Database
from repro.ldbc import load_into, random_pairs

from conftest import SCALE_FACTORS

#: Batch size for the pushdown experiment; only ~1/16 of the pairs
#: survive the source predicate.
BATCH_PAIRS = 128
SELECTIVE_FRACTION = 8
REPEATS = 3

PUSHDOWN_SQL = (
    "SELECT * FROM ("
    "SELECT p.src, p.dst, CHEAPEST SUM(1) AS hops "
    "FROM pairs p "
    "WHERE p.src REACHES p.dst OVER knows EDGE (person1, person2)"
    ") q WHERE q.src <= {cutoff}"
)

REORDER_SQL = (
    "SELECT count(*) FROM persons p1, persons p2, knows k "
    "WHERE p1.id = k.person1 AND k.person2 = p2.id AND p1.id <= {cutoff}"
)


@pytest.fixture(scope="module")
def engines(networks):
    """(optimized, baseline) databases over a mid-size bench network —
    large enough to measure, small enough that the *unoptimized* plans
    (cross products, full-batch traversals) stay tractable."""
    sf = sorted(SCALE_FACTORS)[(len(SCALE_FACTORS) - 1) // 2]
    network = networks[sf]
    optimized = Database()
    baseline = Database(optimizer=False, parameterize=False)
    for db in (optimized, baseline):
        load_into(db, network)
        db.execute("CREATE TABLE pairs (src BIGINT, dst BIGINT)")
        pairs = random_pairs(network, BATCH_PAIRS, seed=42)
        db.table("pairs").insert_rows(pairs)
    optimized.execute("ANALYZE")
    return network, optimized, baseline


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    best = None
    rows = None
    for _ in range(repeats):
        start = time.perf_counter()
        rows = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, rows


def _report(title: str, baseline_s: float, optimized_s: float) -> None:
    speedup = baseline_s / optimized_s if optimized_s else float("inf")
    print(f"\n{title}")
    print(f"  unoptimized: {baseline_s * 1000:9.2f} ms")
    print(f"  optimized:   {optimized_s * 1000:9.2f} ms")
    print(f"  speedup:     {speedup:9.2f}x")


class TestGraphPushdown:
    def test_pushed_down_cheapest_path_beats_unoptimized(self, engines, capsys):
        network, optimized, baseline = engines
        # cutoff keeping roughly 1/SELECTIVE_FRACTION of the batch
        srcs = sorted(
            row[0] for row in optimized.execute("SELECT src FROM pairs").rows()
        )
        cutoff = srcs[max(0, BATCH_PAIRS // SELECTIVE_FRACTION - 1)]
        sql = PUSHDOWN_SQL.format(cutoff=cutoff)

        # the optimizer must have pushed the predicate below the graph op
        plan = optimized.explain(sql)
        lines = plan.splitlines()
        graph_line = next(i for i, l in enumerate(lines) if "GraphSelect" in l)
        assert any("Filter" in l for l in lines[graph_line:]), plan

        base_s, base_rows = _best_of(lambda: baseline.execute(sql).rows())
        opt_s, opt_rows = _best_of(lambda: optimized.execute(sql).rows())
        assert sorted(opt_rows) == sorted(base_rows)
        with capsys.disabled():
            _report("graph pushdown (Fig. 1b batch + source predicate)", base_s, opt_s)
        assert opt_s < base_s, (
            f"pushed-down plan ({opt_s * 1000:.2f} ms) must beat the "
            f"unoptimized plan ({base_s * 1000:.2f} ms)"
        )


class TestJoinReorder:
    def test_reordered_join_beats_syntactic_order(self, engines, capsys):
        network, optimized, baseline = engines
        ids = network.person_ids
        cutoff = int(ids[len(ids) // 4])
        sql = REORDER_SQL.format(cutoff=cutoff)

        # the optimizer must have eliminated the persons x persons cross
        plan = optimized.explain(sql)
        assert "CrossJoin" not in plan, plan

        base_s, base_rows = _best_of(lambda: baseline.execute(sql).rows())
        opt_s, opt_rows = _best_of(lambda: optimized.execute(sql).rows())
        assert opt_rows == base_rows
        with capsys.disabled():
            _report("join reorder (persons x persons x knows)", base_s, opt_s)
        assert opt_s < base_s, (
            f"reordered plan ({opt_s * 1000:.2f} ms) must beat the "
            f"syntactic order ({base_s * 1000:.2f} ms)"
        )
