"""Ablation A5: what does each output level cost?

The same REACHES predicate can be asked for (i) reachability only,
(ii) the shortest-path cost, or (iii) cost plus the materialized path
(nested table).  The paper notes reachability-only queries "still
perform a BFS ... discarding the computed shortest paths"; this ablation
quantifies the increments, including the UNNEST flattening step.
"""

import pytest

from repro.ldbc import random_pairs

from conftest import SCALE_FACTORS

SF = max(SCALE_FACTORS)

REACHABILITY_SQL = (
    "SELECT 1 WHERE ? REACHES ? OVER knows EDGE (person1, person2)"
)
COST_SQL = (
    "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER knows EDGE (person1, person2)"
)
PATH_SQL = (
    "SELECT CHEAPEST SUM(k: 1) AS (c, p) "
    "WHERE ? REACHES ? OVER knows k EDGE (person1, person2)"
)
UNNEST_SQL = (
    "SELECT R.person1, R.person2 FROM ("
    "  SELECT CHEAPEST SUM(k: 1) AS (c, p) "
    "  WHERE ? REACHES ? OVER knows k EDGE (person1, person2)"
    ") T, UNNEST(T.p) AS R"
)

_QUERIES = {
    "reachability": REACHABILITY_SQL,
    "cost": COST_SQL,
    "cost_and_path": PATH_SQL,
    "unnested_path": UNNEST_SQL,
}


@pytest.fixture(scope="module")
def workload(networks, databases):
    return databases[SF], random_pairs(networks[SF], 32, seed=91)


@pytest.mark.parametrize("level", list(_QUERIES))
def test_bench_output_level(benchmark, workload, level):
    db, pairs = workload
    sql = _QUERIES[level]
    state = {"i": 0}

    def one_query():
        source, dest = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return db.execute(sql, (source, dest)).rows()

    benchmark(one_query)


def test_outputs_are_consistent(workload):
    db, pairs = workload
    for source, dest in pairs[:8]:
        reach = db.execute(REACHABILITY_SQL, (source, dest)).rows()
        cost = db.execute(COST_SQL, (source, dest)).rows()
        both = db.execute(PATH_SQL, (source, dest)).rows()
        assert (len(reach) > 0) == (len(cost) > 0) == (len(both) > 0)
        if both:
            hops, path = both[0]
            assert cost[0][0] == hops
            assert len(path) == hops
            flattened = db.execute(UNNEST_SQL, (source, dest)).rows()
            assert len(flattened) == hops
