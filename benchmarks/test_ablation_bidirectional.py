"""Ablation A6: unidirectional vs bidirectional BFS on a prepared graph.

The paper expects "to significantly improve the BFS implementation"
(Section 4).  Bidirectional search is that improvement for the
single-pair case: with the CSR (and its transpose) already prepared — a
graph index — the per-query work drops from O(b^d) to O(b^(d/2))
explored vertices.
"""

import numpy as np
import pytest

from repro.graph import GraphLibrary, bfs, bidirectional_distance

from conftest import SCALE_FACTORS


@pytest.fixture(scope="module")
def prepared(networks):
    network = networks[max(SCALE_FACTORS)]
    src, dst, _, _ = network.directed_edges()
    library = GraphLibrary(src, dst)
    library.reverse  # pre-build the transpose, like a graph index would
    rng = np.random.default_rng(41)
    encoded = library.domain.encode(rng.choice(network.person_ids, size=64))
    pairs = [(int(encoded[2 * i]), int(encoded[2 * i + 1])) for i in range(32)]
    return library, pairs


def test_bench_unidirectional_single_pair(benchmark, prepared):
    library, pairs = prepared
    state = {"i": 0}

    def one_pair():
        source, target = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return bfs(library.csr, source, targets=np.array([target]))

    benchmark(one_pair)


def test_bench_bidirectional_single_pair(benchmark, prepared):
    library, pairs = prepared
    state = {"i": 0}

    def one_pair():
        source, target = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return bidirectional_distance(library.csr, library.reverse, source, target)

    benchmark(one_pair)


def test_bidirectional_agrees_on_bench_graph(prepared):
    library, pairs = prepared
    for source, target in pairs:
        reference = bfs(library.csr, source, targets=np.array([target]))
        distance, _ = bidirectional_distance(
            library.csr, library.reverse, source, target
        )
        assert distance == reference.cost(target)
