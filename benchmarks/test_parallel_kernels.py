"""Experiment: morsel-driven parallel kernels vs the serial kernels.

The tentpole operators of the workers follow-up — 1M-row GROUP BY,
DISTINCT and a 2-key equi-join — run on identical data at
``exec_workers`` 1, 2 and 4 (thresholds forced down so the morsel layer
engages at every scale).  Results must be *bit-identical* across worker
counts on every run; wall times and speedups land in
``BENCH_parallel.json`` at the repo root, next to ``BENCH_exec.json``
(the CI smoke job re-runs this small and uploads both artifacts).

Environment knobs:

* ``REPRO_BENCH_KERNEL_ROWS`` — fact-table size (default 1_000_000,
  shared with the vectorized-kernel benchmark);
* ``REPRO_BENCH_PARALLEL_OUT`` — output path for ``BENCH_parallel.json``.

The >=2x speedup floor for 4 workers is asserted only at full scale
(>= 1M rows) *and* with >= 4 CPUs available — a shared 1-core CI runner
cannot scale however good the kernels are; there the run is a
correctness + trend smoke.

Speedup *recording* is gated separately: with fewer CPUs than the
largest worker count, multi-worker "speedups" are pure scheduling noise
(≤ 1.0 by construction), so the JSON carries an explicit
``"insufficient_cpus"`` marker instead of numbers — a 1-CPU CI runner
can never again commit a meaningless trajectory (wall times are still
recorded; they remain valid absolute measurements).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import Database
from repro.exec.parallel import resolve_exec_workers
from repro.storage import Column, DataType

ROWS = int(os.environ.get("REPRO_BENCH_KERNEL_ROWS", str(1_000_000)))
#: Build-side size of the join experiment (~1 match per probe row).
JOIN_BUILD_ROWS = max(ROWS // 20, 1)
#: Cardinality of the primary grouping key.
GROUPS = 1_000
WORKER_COUNTS = (1, 2, 4)
OUT_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_PARALLEL_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_parallel.json",
    )
)
#: Speedup floor asserted for 4 workers over 1, full scale + >=4 CPUs.
MIN_SPEEDUP = 2.0
#: Usable CPUs: affinity-aware (a containerized runner may expose fewer
#: schedulable CPUs than ``os.cpu_count()`` reports).
CPUS = min(resolve_exec_workers("auto"), os.cpu_count() or 1)
#: Multi-worker speedups are only *recorded* when the machine can
#: actually run the largest worker count concurrently; otherwise the
#: JSON carries the "insufficient_cpus" marker instead of noise.
SUFFICIENT_CPUS = CPUS >= max(WORKER_COUNTS)
ASSERT_SPEEDUPS = ROWS >= 1_000_000 and CPUS >= 4

_results: dict[str, dict] = {}


@pytest.fixture(scope="module")
def engines():
    yield from _build_engines()


def _build_engines():
    rng = np.random.default_rng(20260731)
    k1 = rng.integers(0, GROUPS, size=ROWS, dtype=np.int64)
    k2 = rng.integers(0, 50, size=ROWS, dtype=np.int64)
    v = rng.random(ROWS)
    build_k1 = rng.integers(0, GROUPS, size=JOIN_BUILD_ROWS, dtype=np.int64)
    build_k2 = rng.integers(0, 50, size=JOIN_BUILD_ROWS, dtype=np.int64)
    built = {}
    for workers in WORKER_COUNTS:
        # thresholds forced low so smoke scales still exercise morsels
        db = Database(
            exec_workers=workers,
            morsel_rows=max(ROWS // 16, 4096),
            parallel_min_rows=0,
        )
        db.execute("CREATE TABLE t (k1 BIGINT, k2 BIGINT, v DOUBLE)")
        db.table("t").insert_columns(
            [
                Column(DataType.BIGINT, k1.copy()),
                Column(DataType.BIGINT, k2.copy()),
                Column(DataType.DOUBLE, v.copy()),
            ]
        )
        db.execute("CREATE TABLE s (k1 BIGINT, k2 BIGINT)")
        db.table("s").insert_columns(
            [
                Column(DataType.BIGINT, build_k1.copy()),
                Column(DataType.BIGINT, build_k2.copy()),
            ]
        )
        db.execute("ANALYZE")
        built[workers] = db
    yield built
    for db in built.values():
        for table in ("t", "s"):
            db.execute(f"DROP TABLE {table}")
    import gc

    gc.collect()


def _time(db: Database, sql: str, repeats: int):
    """Best wall time over ``repeats`` runs after one uncounted warm-up
    (plan-cache warming, factorize memo fill: both worker counts pay
    the same costs, so the recorded ratios are kernel time only)."""
    db.execute(sql)
    best, result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = db.execute(sql)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _record(op: str, sql: str, timings: dict[int, float], capsys) -> None:
    serial = timings[1]
    _results[op] = {
        "sql": sql,
        "rows": ROWS,
        "seconds": {str(w): round(s, 6) for w, s in timings.items()},
        # a box that cannot run max(WORKER_COUNTS) threads concurrently
        # produces speedups <= 1.0 by construction: record the explicit
        # marker, never the meaningless numbers
        "speedups": {
            str(w): round(serial / s, 2) if s else None
            for w, s in timings.items()
        }
        if SUFFICIENT_CPUS
        else "insufficient_cpus",
        "rows_per_s": {
            str(w): int(ROWS / s) if s else None for w, s in timings.items()
        },
    }
    OUT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "parallel_kernels",
                "rows": ROWS,
                "cpus": CPUS,
                "worker_counts": list(WORKER_COUNTS),
                "insufficient_cpus": not SUFFICIENT_CPUS,
                "min_speedup_asserted": MIN_SPEEDUP if ASSERT_SPEEDUPS else None,
                "ops": _results,
            },
            indent=2,
        )
        + "\n"
    )
    with capsys.disabled():
        line = " | ".join(
            f"{w}w {timings[w] * 1000:8.2f} ms" for w in WORKER_COUNTS
        )
        tail = (
            f"x{serial / timings[4]:.2f} @4w"
            if SUFFICIENT_CPUS
            else f"insufficient cpus ({CPUS})"
        )
        print(f"\n{op}: {line} | {tail}")


def _compare(op, sql, engines, capsys, *, repeats=3, assert_speedup=False):
    timings, rows = {}, {}
    for workers in WORKER_COUNTS:
        seconds, result = _time(engines[workers], sql, repeats)
        timings[workers] = seconds
        rows[workers] = result.rows()
    # bit-identical across worker counts — float sums and tie order too
    for workers in WORKER_COUNTS[1:]:
        assert list(map(repr, rows[workers])) == list(map(repr, rows[1])), (
            f"{op}: workers={workers} diverged from the serial oracle"
        )
    _record(op, sql, timings, capsys)
    if assert_speedup and ASSERT_SPEEDUPS:
        speedup = timings[1] / timings[4]
        assert speedup >= MIN_SPEEDUP, (
            f"{op}: 4 workers only {speedup:.2f}x over 1 "
            f"(< {MIN_SPEEDUP}x) at {ROWS} rows on {CPUS} CPUs"
        )


class TestParallelKernelSpeedups:
    def test_group_by(self, engines, capsys):
        _compare(
            "group_by",
            "SELECT k1, count(*), sum(v), min(v), max(v) FROM t GROUP BY k1",
            engines,
            capsys,
            assert_speedup=True,
        )

    def test_distinct(self, engines, capsys):
        _compare("distinct", "SELECT DISTINCT k1, k2 FROM t", engines, capsys)

    def test_two_key_join(self, engines, capsys):
        _compare(
            "join_2key",
            "SELECT count(*) FROM t JOIN s ON t.k1 = s.k1 AND t.k2 = s.k2",
            engines,
            capsys,
            assert_speedup=True,
        )

    def test_morsels_actually_ran(self, engines):
        for workers, db in engines.items():
            stats = db.parallel_stats()
            if workers == 1:
                assert stats["parallel_op_total"] == 0, stats
            else:
                assert stats["parallel_op_total"] >= 3, stats
                assert stats["morsel_total"] >= 2, stats
