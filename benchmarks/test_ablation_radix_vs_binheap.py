"""Ablation A1: Dijkstra with the Radix Queue vs a binary heap.

The paper's runtime pairs Dijkstra with the radix queue of Ahuja et al.
("a more tuned radix queue under the hood").  This ablation isolates the
priority-queue choice on identical CSR graphs and verifies both produce
identical distances.
"""

import numpy as np
import pytest

from repro.graph import GraphLibrary, dijkstra

from conftest import SCALE_FACTORS


@pytest.fixture(scope="module")
def prepared(networks):
    """Weighted CSR of the largest bench graph + query sources."""
    network = networks[max(SCALE_FACTORS)]
    src, dst, _, weights = network.directed_edges()
    scaled = (weights * 10).astype(np.int64)
    library = GraphLibrary(src, dst, scaled)
    rng = np.random.default_rng(17)
    sources = library.domain.encode(rng.choice(network.person_ids, size=32))
    return library, sources


def test_radix_and_binary_agree_on_bench_graph(prepared):
    library, sources = prepared
    for source in sources[:8]:
        a = dijkstra(library.csr, int(source), queue="radix")
        b = dijkstra(library.csr, int(source), queue="binary")
        assert a.dist.tolist() == b.dist.tolist()


@pytest.mark.parametrize("queue", ["radix", "binary"])
def test_bench_dijkstra_queue(benchmark, prepared, queue):
    library, sources = prepared
    state = {"i": 0}

    def one_traversal():
        source = int(sources[state["i"] % len(sources)])
        state["i"] += 1
        return dijkstra(library.csr, source, queue=queue)

    benchmark(one_traversal)
