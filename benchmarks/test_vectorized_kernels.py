"""Experiment: vectorized kernels vs the row-at-a-time executor.

Five key-driven operator shapes over the same generated data, each run
on ``Database()`` (kernels) and ``Database(vectorized=False)`` (the
row-at-a-time oracle): 1M-row GROUP BY, DISTINCT, a 2-key equi-join,
EXCEPT, and a 2-key ORDER BY.  Results are asserted identical between
the engines on every run; rows/sec and speedups land in
``BENCH_exec.json`` at the repo root — the start of the accumulated
perf trajectory (the CI smoke job re-runs this at a small scale and
uploads the file as an artifact).

Environment knobs:

* ``REPRO_BENCH_KERNEL_ROWS`` — fact-table size (default 1_000_000);
* ``REPRO_BENCH_EXEC_OUT`` — output path for ``BENCH_exec.json``.

The >=5x speedup assertions only apply at full scale (>= 1M rows):
below that the Python fixed costs flatter the baseline and the numbers
are smoke signal only.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import Database
from repro.storage import Column, DataType

ROWS = int(os.environ.get("REPRO_BENCH_KERNEL_ROWS", str(1_000_000)))
#: Build-side size of the join experiment (~1 match per probe row, so
#: the measurement is dominated by the probe, not by materializing a
#: multiple of the input as output).
JOIN_BUILD_ROWS = max(ROWS // 20, 1)
#: Rows of the EXCEPT right input.
EXCEPT_RIGHT_ROWS = max(ROWS // 4, 1)
#: Cardinality of the primary grouping key.
GROUPS = 1_000
OUT_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_EXEC_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_exec.json",
    )
)
#: Speedup floor asserted at full scale for the tentpole operators.
MIN_SPEEDUP = 5.0
ASSERT_SPEEDUPS = ROWS >= 1_000_000

_results: dict[str, dict] = {}


@pytest.fixture(scope="module")
def engines():
    yield from _build_engines()


def _build_engines():
    rng = np.random.default_rng(20260730)
    k1 = rng.integers(0, GROUPS, size=ROWS, dtype=np.int64)
    k2 = rng.integers(0, 50, size=ROWS, dtype=np.int64)
    v = rng.random(ROWS)
    build_k1 = rng.integers(0, GROUPS, size=JOIN_BUILD_ROWS, dtype=np.int64)
    build_k2 = rng.integers(0, 50, size=JOIN_BUILD_ROWS, dtype=np.int64)
    right_k1 = rng.integers(0, GROUPS, size=EXCEPT_RIGHT_ROWS, dtype=np.int64)
    right_k2 = rng.integers(0, 50, size=EXCEPT_RIGHT_ROWS, dtype=np.int64)
    built = []
    for vectorized in (True, False):
        db = Database(vectorized=vectorized)
        db.execute("CREATE TABLE t (k1 BIGINT, k2 BIGINT, v DOUBLE)")
        db.table("t").insert_columns(
            [
                Column(DataType.BIGINT, k1.copy()),
                Column(DataType.BIGINT, k2.copy()),
                Column(DataType.DOUBLE, v.copy()),
            ]
        )
        db.execute("CREATE TABLE s (k1 BIGINT, k2 BIGINT)")
        db.table("s").insert_columns(
            [
                Column(DataType.BIGINT, build_k1.copy()),
                Column(DataType.BIGINT, build_k2.copy()),
            ]
        )
        db.execute("CREATE TABLE r (k1 BIGINT, k2 BIGINT)")
        db.table("r").insert_columns(
            [
                Column(DataType.BIGINT, right_k1.copy()),
                Column(DataType.BIGINT, right_k2.copy()),
            ]
        )
        db.execute("ANALYZE")
        built.append(db)
    yield built[0], built[1]
    # pytest's fixture cache still references the yielded tuple during
    # finalization, so dropping the tables (not just our locals) is what
    # actually releases the ~100MB of column data.  This module is also
    # named to sort *after* the timing-shape benchmarks (fig1a/fig1b),
    # so its allocations never run ahead of their assertions.
    for db in built:
        for table in ("t", "s", "r"):
            db.execute(f"DROP TABLE {table}")
    import gc

    gc.collect()


def _time(db: Database, sql: str, repeats: int):
    """Best wall time over ``repeats`` runs, after one uncounted
    warm-up run (both engines pay it, so plan-cache warming and
    parse/optimize time cannot skew the recorded speedups)."""
    db.execute(sql)
    best, result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = db.execute(sql)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _record(op: str, sql: str, vec_s: float, base_s: float, capsys) -> None:
    speedup = base_s / vec_s if vec_s else float("inf")
    _results[op] = {
        "sql": sql,
        "rows": ROWS,
        "vectorized_s": round(vec_s, 6),
        "rowwise_s": round(base_s, 6),
        "speedup": round(speedup, 2),
        "rows_per_s_vectorized": int(ROWS / vec_s) if vec_s else None,
        "rows_per_s_rowwise": int(ROWS / base_s) if base_s else None,
    }
    OUT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "exec_kernels",
                "rows": ROWS,
                "min_speedup_asserted": MIN_SPEEDUP if ASSERT_SPEEDUPS else None,
                "ops": _results,
            },
            indent=2,
        )
        + "\n"
    )
    with capsys.disabled():
        print(
            f"\n{op}: rowwise {base_s * 1000:9.2f} ms | "
            f"vectorized {vec_s * 1000:9.2f} ms | {speedup:7.2f}x"
        )


def _compare(op, sql, engines, capsys, *, repeats=3, assert_speedup=False):
    vectorized, rowwise = engines
    vec_s, vec_result = _time(vectorized, sql, repeats)
    base_s, base_result = _time(rowwise, sql, 1)
    assert len(vec_result) == len(base_result), sql
    _record(op, sql, vec_s, base_s, capsys)
    if assert_speedup and ASSERT_SPEEDUPS:
        speedup = base_s / vec_s
        assert speedup >= MIN_SPEEDUP, (
            f"{op}: vectorized path is only {speedup:.2f}x faster "
            f"(< {MIN_SPEEDUP}x) at {ROWS} rows"
        )
    return vec_result, base_result


class TestKernelSpeedups:
    def test_group_by(self, engines, capsys):
        sql = "SELECT k1, count(*), sum(v), min(v), max(v) FROM t GROUP BY k1"
        vec, base = _compare("group_by", sql, engines, capsys, assert_speedup=True)
        # SUM(double) may differ in the last ULP (reduceat sums pairwise,
        # the row path sequentially) — compare with a 1e-9 relative gate
        for vrow, brow in zip(sorted(vec.rows()), sorted(base.rows())):
            assert vrow[:2] == brow[:2]
            assert vrow[2] == pytest.approx(brow[2], rel=1e-9)
            assert vrow[3:] == brow[3:]  # min/max are exact

    def test_distinct(self, engines, capsys):
        sql = "SELECT DISTINCT k1, k2 FROM t"
        vec, base = _compare("distinct", sql, engines, capsys, assert_speedup=True)
        assert sorted(vec.rows()) == sorted(base.rows())

    def test_two_key_join(self, engines, capsys):
        sql = "SELECT count(*) FROM t JOIN s ON t.k1 = s.k1 AND t.k2 = s.k2"
        vec, base = _compare("join_2key", sql, engines, capsys, assert_speedup=True)
        assert vec.scalar() == base.scalar()

    def test_except(self, engines, capsys):
        sql = "SELECT k1, k2 FROM t EXCEPT SELECT k1, k2 FROM r"
        vec, base = _compare("except", sql, engines, capsys)
        assert sorted(vec.rows()) == sorted(base.rows())

    def test_sort(self, engines, capsys):
        sql = "SELECT k1, k2, v FROM t ORDER BY k1, v DESC"
        vec, base = _compare("sort", sql, engines, capsys, repeats=2)
        # ordering (tie order included) is bit-identical by contract
        assert vec.rows()[:500] == base.rows()[:500]

    def test_kernels_actually_ran(self, engines):
        vectorized, rowwise = engines
        stats = vectorized.kernel_stats()
        for op in ("group_by", "distinct", "join", "setop", "sort"):
            assert stats["hits"].get(op, 0) >= 1, stats
        assert rowwise.kernel_stats()["hit_total"] == 0
