"""Experiment: Figure 1a — average latency per query vs scale factor.

The paper runs Q13 (unweighted, BFS) and the Q14 variant (weighted,
Dijkstra + radix queue) with uniformly random <source, destination>
parameters, 1000 repetitions per scale factor (100 at SF 100/300), and
reports:

* latency grows with the scale factor (graph construction dominates);
* the two queries differ by roughly 25% at SF 1 shrinking to ~10% at
  larger SFs (their BFS was unoptimized; our BFS is vectorized, so in
  this reproduction the *unweighted* side is the faster one — the gap
  still narrows with scale, which is the paper's structural claim that
  traversal differences wash out as graph-build cost dominates).
"""

import pytest

from repro.harness import fig1a, format_table
from repro.ldbc import random_pairs, run_q13, run_q14_variant

from conftest import BENCH_SCALE, SCALE_FACTORS


@pytest.mark.parametrize("sf", SCALE_FACTORS)
def test_bench_q13_unweighted(benchmark, networks, databases, sf):
    """Figure 1a, 'Q13 / unweighted S.P.' series."""
    db = databases[sf]
    pairs = random_pairs(networks[sf], 64, seed=100 + sf)
    state = {"i": 0}

    def one_query():
        source, dest = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return run_q13(db, source, dest)

    benchmark(one_query)


@pytest.mark.parametrize("sf", SCALE_FACTORS)
def test_bench_q14_weighted(benchmark, networks, databases, sf):
    """Figure 1a, 'Q14 (variant) / weighted S.P.' series."""
    db = databases[sf]
    pairs = random_pairs(networks[sf], 64, seed=200 + sf)
    state = {"i": 0}

    def one_query():
        source, dest = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return run_q14_variant(db, source, dest)

    benchmark(one_query)


def test_fig1a_reproduction_report(databases, capsys):
    """Regenerate the Figure 1a series and check its shape."""
    rows = fig1a(
        scale_factors=SCALE_FACTORS,
        pairs_per_sf=12,
        scale=BENCH_SCALE,
        databases=databases,
    )
    for row in rows:
        row["avg_ms"] = round(row["avg_latency_s"] * 1000, 3)
    with capsys.disabled():
        print("\n=== Figure 1a (avg latency per query) ===")
        print(format_table(rows, columns=("scale_factor", "query", "avg_ms")))

    by_query = {}
    for row in rows:
        by_query.setdefault(row["query"], {})[row["scale_factor"]] = row[
            "avg_latency_s"
        ]
    ordered = sorted(SCALE_FACTORS)
    for series in by_query.values():
        # latency must grow with scale factor (graph build dominates);
        # compare the extremes to stay robust to noise
        assert series[ordered[-1]] > series[ordered[0]]
    # both queries are within an order of magnitude of each other at the
    # largest SF (the paper's 10-25% gap, loosened for a Python substrate)
    largest = ordered[-1]
    q13 = by_query["Q13 / unweighted S.P."][largest]
    q14 = by_query["Q14 (variant) / weighted S.P."][largest]
    assert 0.1 < q13 / q14 < 10
