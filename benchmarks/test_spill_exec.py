"""Experiment: memory-budgeted execution vs the materialized paths.

Each operator family — selective streamed scan, spilled GROUP BY,
spilled equi-join, external ORDER BY — runs in a fresh subprocess over
the same persisted encoded image, three ways:

* **materialized** (``memory_budget=None``) — today's engine, for the
  result oracle and the unbudgeted wall-clock baseline;
* **budgeted** (``memory_budget=`` :data:`BUDGET`, ~1/10 of the decoded
  working set) under ``RLIMIT_DATA`` capped at a per-op allowance —
  must finish, with bit-identical results;
* **materialized under the same cap** — must *fail*: the full-column
  decode cannot honor the allowance the budgeted run just finished in.

``RLIMIT_DATA`` bounds heap/anonymous memory only; the image arrives
via mmap, so the cap constrains exactly what the budget is supposed to
bound — decoded morsels, hash/sort state, spill buffers.  The cap is
set *inside* the child, on top of its measured post-open ``VmData``,
so interpreter baseline drift cannot skew the experiment.

Timings, peak RSS, and spill counters land in ``BENCH_spill.json`` at
the repo root (the CI smoke job re-runs this at a small scale and
uploads the file alongside the other bench artifacts).

Environment knobs:

* ``REPRO_BENCH_SPILL_ROWS`` — fact-table size (default 4_000_000);
* ``REPRO_BENCH_SPILL_OUT`` — output path for ``BENCH_spill.json``.

The cap-failure and the <= :data:`MAX_BUDGET_SLOWDOWN` x wall-clock
assertions only apply at full scale (>= 4M rows): below that fixed
costs dominate and the numbers are smoke signal only.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro import Database

ROWS = int(os.environ.get("REPRO_BENCH_SPILL_ROWS", str(4_000_000)))
DIM_ROWS = 1_000
#: per-query working-memory target for the budgeted runs: ~1/10 of the
#: decoded fact working set, far below what materialization needs
BUDGET = max(1 << 20, ROWS * 40 // 10)
OUT_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_SPILL_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_spill.json",
    )
)
#: budgeted-but-everything-fits may cost at most this much over the
#: materialized baseline (streaming re-decodes what caching amortizes)
MAX_BUDGET_SLOWDOWN = 1.5
ASSERT_LIMITS = ROWS >= 4_000_000

#: anonymous-memory allowance for the capped runs, on top of the
#: child's post-open baseline: fixed slack + per-row operator state
#: (group: the int64 key-code arrays; join: the shared-dictionary
#: codification of both sides; sort: the (rank, row) permutation and
#: its final pairwise merge)
CAP_FIXED = 64 << 20
CAP_PER_ROW = {"scan": 8, "group_by": 24, "join": 40, "sort": 56}

OPS = {
    "scan": (
        "SELECT COUNT(*) AS c, SUM(v1) AS s1, SUM(v2) AS s2, "
        "SUM(v3) AS s3, SUM(v4) AS s4 FROM fact WHERE v1 < 40"
    ),
    "group_by": (
        "SELECT k, COUNT(*) AS c, SUM(v1) AS s1, SUM(v2) AS s2, "
        "SUM(v3) AS s3 FROM fact GROUP BY k"
    ),
    "join": (
        "SELECT dim.w AS w, COUNT(*) AS c, SUM(fact.v1) AS s1, "
        "SUM(fact.v2) AS s2 FROM fact JOIN dim ON fact.k = dim.id "
        "GROUP BY dim.w"
    ),
    "sort": (
        "SELECT k, v1, v2, v3, v4 FROM fact ORDER BY v2, v1, k LIMIT 1000"
    ),
}

_results: dict[str, dict] = {}


def _flush() -> None:
    OUT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "spill_exec",
                "rows": ROWS,
                "memory_budget_bytes": BUDGET,
                "max_budget_slowdown_asserted": (
                    MAX_BUDGET_SLOWDOWN if ASSERT_LIMITS else None
                ),
                "ops": _results,
            },
            indent=2,
        )
        + "\n"
    )


_CHILD = r"""
import hashlib, json, os, resource, sys, time

sys.path.insert(0, sys.argv[1])
target, budget, cap_extra, sql = (
    sys.argv[2], int(sys.argv[3]), int(sys.argv[4]), sys.argv[5]
)

from repro import Database

db = Database.open(target, durability="off", memory_budget=budget or None)
db.execute("SELECT 1 AS one")  # warm the statement machinery


def vm_data_bytes():
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmData:"):
                return int(line.split()[1]) * 1024
    return 0


baseline = vm_data_bytes()
if cap_extra:
    cap = baseline + cap_extra
    resource.setrlimit(resource.RLIMIT_DATA, (cap, cap))

payload = {"baseline_vmdata": baseline, "cap_extra": cap_extra}
try:
    start = time.perf_counter()
    rows = db.execute(sql).rows()
    payload["wall_s"] = round(time.perf_counter() - start, 6)
    payload["ok"] = True
    payload["rows"] = len(rows)
    payload["checksum"] = hashlib.md5(repr(rows).encode()).hexdigest()
    payload["counters"] = db.memory_stats()
except MemoryError:
    payload["ok"] = False
    payload["error"] = "MemoryError"
payload["maxrss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps(payload))
"""


@pytest.fixture(scope="module")
def image_dir():
    rng = np.random.default_rng(20260808)
    with tempfile.TemporaryDirectory() as tmp:
        fact = os.path.join(tmp, "fact.npz")
        dim = os.path.join(tmp, "dim.npz")
        np.savez(
            fact,
            k=rng.integers(0, 20_000, ROWS),
            v1=rng.integers(0, 1_000, ROWS),
            v2=rng.integers(0, 100_000, ROWS),
            v3=rng.integers(0, 256, ROWS),
            # locally clustered: drifts upward but stays tight per zone,
            # so ANALYZE adopts the per-zone frame-of-reference packing
            v4=np.arange(ROWS, dtype=np.int64) // 8
            + rng.integers(0, 256, ROWS),
        )
        np.savez(
            dim,
            id=np.arange(9_500, 9_500 + DIM_ROWS),
            w=rng.integers(0, 50, DIM_ROWS),
        )
        db = Database()
        db.execute(
            "CREATE TABLE fact "
            "(k BIGINT, v1 BIGINT, v2 BIGINT, v3 BIGINT, v4 BIGINT)"
        )
        db.execute("CREATE TABLE dim (id BIGINT, w BIGINT)")
        db.execute(f"COPY fact FROM '{fact}'")
        db.execute(f"COPY dim FROM '{dim}'")
        db.execute("ANALYZE")
        target = os.path.join(tmp, "db")
        db.save(target)
        db.close()
        os.unlink(fact)
        os.unlink(dim)
        yield target


def _child(image: str, budget: int, cap_extra: int, sql: str) -> dict:
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    proc = subprocess.run(
        [
            sys.executable, "-c", _CHILD,
            src, image, str(budget), str(cap_extra), sql,
        ],
        capture_output=True,
        text=True,
        timeout=600,
    )
    if proc.returncode != 0:
        # an allocation the interpreter could not unwind from still
        # counts as the capped run failing
        return {"ok": False, "error": f"exit {proc.returncode}"}
    return json.loads(proc.stdout)


@pytest.mark.parametrize("op", list(OPS))
def test_budgeted_vs_materialized(op, image_dir, capsys):
    sql = OPS[op]
    cap_extra = CAP_FIXED + CAP_PER_ROW[op] * ROWS

    oracle = _child(image_dir, 0, 0, sql)
    assert oracle["ok"], oracle
    budgeted = _child(image_dir, BUDGET, cap_extra, sql)
    assert budgeted["ok"], budgeted
    assert budgeted["checksum"] == oracle["checksum"]
    assert budgeted["rows"] == oracle["rows"]
    capped_materialized = _child(image_dir, 0, cap_extra, sql)

    # a large budget keeps the accounting/streaming machinery on while
    # everything fits: its cost over the materialized baseline is the
    # price of the knob, bounded by MAX_BUDGET_SLOWDOWN
    fits = _child(image_dir, max(BUDGET * 64, 1 << 33), 0, sql)
    assert fits["ok"] and fits["checksum"] == oracle["checksum"]
    slowdown = (
        fits["wall_s"] / oracle["wall_s"] if oracle["wall_s"] else 1.0
    )

    entry = {
        "sql": sql,
        "cap_extra_bytes": cap_extra,
        "unbudgeted": {
            "wall_s": oracle["wall_s"], "maxrss_kb": oracle["maxrss_kb"]
        },
        "budgeted": {
            "wall_s": budgeted["wall_s"],
            "maxrss_kb": budgeted["maxrss_kb"],
            "counters": budgeted["counters"],
        },
        "budgeted_fits_wall_s": fits["wall_s"],
        "budget_slowdown": round(slowdown, 3),
        "materialized_under_cap_ok": capped_materialized["ok"],
    }
    _results[op] = entry
    _flush()
    with capsys.disabled():
        print(
            f"\n{op}: unbudgeted {oracle['wall_s'] * 1000:9.1f} ms "
            f"(rss {oracle['maxrss_kb'] // 1024} MB) | budgeted "
            f"{budgeted['wall_s'] * 1000:9.1f} ms "
            f"(rss {budgeted['maxrss_kb'] // 1024} MB) | "
            f"fits-slowdown {slowdown:.2f}x | materialized under cap: "
            f"{'OK (!)' if capped_materialized['ok'] else 'fails'}"
        )

    counters = budgeted["counters"]
    assert counters["spills"] + counters["sort_runs"] + counters["streams"] > 0
    if ASSERT_LIMITS:
        # the budgeted run just finished under a cap the materialized
        # path cannot honor
        assert not capped_materialized["ok"], capped_materialized
        assert slowdown <= MAX_BUDGET_SLOWDOWN, entry
