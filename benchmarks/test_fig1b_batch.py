"""Experiment: Figure 1b — latency per pair at varying batch sizes.

The paper: "The second experiment repeats the execution of Query 13, but
grouping together multiple pairs <source, destination> at varying batch
sizes ... the execution time decreases almost linearly and, for larger
batch sizes, it finally amortizes the cost of constructing the
underlying graph representation."

Batched Q13 here REACHES over a pairs parameter table, so one statement
builds the CSR once and answers the whole batch.
"""

import pytest

from repro.harness import fig1b, format_table
from repro.ldbc import random_pairs, run_q13_batch

from conftest import BENCH_SCALE, SCALE_FACTORS

BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64, 128)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_bench_q13_batch(benchmark, networks, databases, batch_size):
    """One Figure 1b point per batch size, at the largest bench SF."""
    sf = max(SCALE_FACTORS)
    db = databases[sf]
    pairs = random_pairs(networks[sf], batch_size, seed=300 + batch_size)
    benchmark(lambda: run_q13_batch(db, pairs))


def test_fig1b_reproduction_report(databases, capsys):
    """Regenerate the Figure 1b series and check the amortization shape."""
    rows = fig1b(
        scale_factors=SCALE_FACTORS,
        batch_sizes=BATCH_SIZES,
        repeats=2,
        scale=BENCH_SCALE,
        databases=databases,
    )
    for row in rows:
        row["per_pair_ms"] = round(row["avg_latency_per_pair_s"] * 1000, 3)
    with capsys.disabled():
        print("\n=== Figure 1b (avg time per pair vs batch size) ===")
        print(
            format_table(
                rows, columns=("scale_factor", "batch_size", "per_pair_ms")
            )
        )

    series: dict[int, dict[int, float]] = {}
    for row in rows:
        series.setdefault(row["scale_factor"], {})[row["batch_size"]] = row[
            "avg_latency_per_pair_s"
        ]
    for sf, points in series.items():
        smallest, largest = min(BATCH_SIZES), max(BATCH_SIZES)
        # the paper's claim: near-linear decrease of per-pair time; even
        # allowing noise, 128-pair batches must beat singletons by >= 4x
        assert points[largest] < points[smallest] / 4, (
            f"SF {sf}: batching did not amortize ({points})"
        )
        # and the curve is (weakly) monotone between the extremes
        assert points[largest] == min(points.values())
