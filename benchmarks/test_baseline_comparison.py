"""Ablation A3: the extension vs the three "customary means" (Section 1).

The paper motivates the extension by the weaknesses of recursion, PSM
and chains of joins: verbosity, broken declarativity, and performance
("full search instead of Dijkstra", "interpretation overhead").  This
module measures all four approaches on identical Q13 workloads.
"""

import pytest

from repro.baselines import PsmShortestPath, run_q13_chain, run_q13_recursive
from repro.ldbc import random_pairs, run_q13

from conftest import SCALE_FACTORS

BASELINE_SF = min(SCALE_FACTORS)


@pytest.fixture(scope="module")
def workload(networks, databases):
    network = networks[BASELINE_SF]
    db = databases[BASELINE_SF]
    pairs = random_pairs(network, 16, seed=55)
    return db, pairs


def _cycle(pairs):
    state = {"i": 0}

    def next_pair():
        pair = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return pair

    return next_pair


def test_bench_extension(benchmark, workload):
    db, pairs = workload
    next_pair = _cycle(pairs)
    benchmark(lambda: run_q13(db, *next_pair()))


def test_bench_recursive_cte(benchmark, workload):
    db, pairs = workload
    next_pair = _cycle(pairs)
    benchmark(lambda: run_q13_recursive(db, *next_pair(), max_hops=6))


def test_bench_psm(benchmark, workload):
    db, pairs = workload
    psm = PsmShortestPath(db)
    next_pair = _cycle(pairs)
    benchmark(lambda: psm(*next_pair()))


def test_bench_chain_joins(benchmark, workload):
    db, pairs = workload
    next_pair = _cycle(pairs)
    benchmark(lambda: run_q13_chain(db, *next_pair(), max_hops=2))


def test_all_approaches_agree(workload):
    db, pairs = workload
    psm = PsmShortestPath(db)
    for source, dest in pairs:
        expected = run_q13(db, source, dest)
        assert run_q13_recursive(db, source, dest) == expected
        assert psm(source, dest) == expected
        chain = run_q13_chain(db, source, dest, max_hops=3)
        if expected is not None and expected <= 3:
            assert chain == expected
