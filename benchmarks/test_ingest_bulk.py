"""Experiment: bulk ingest fast path + incremental graph maintenance.

Two measurements, each an A/B over the same generated data:

* **bulk_vs_row_insert** — loading the same table through
  ``Database.appender`` (one columnar batch, morsel-parallel section
  builds, zone maps extended in place) vs prepared row INSERTs through
  ``Session.executemany`` (the per-tuple path: coerce each Python value,
  one version per statement).  The row path is timed over a capped
  prefix sample (``REPRO_BENCH_INGEST_ROW_SAMPLE``) and compared by
  rows/sec: each single-row INSERT concatenates the whole table, so
  its per-row cost *grows* with table size — sampling the cheap prefix
  understates the row cost and keeps the reported speedup
  conservative.  Both paths load bit-identical columns —
  ``tests/test_ingest.py`` proves that exhaustively, here aggregates
  over the shared prefix are cross-checked;
* **dml_then_path_query** — interleaved single-row DML and CHEAPEST
  path queries over an indexed edge table: ``Database()`` folds each
  write into the CSR overlay and serves queries from the merged view,
  ``Database(graph_overlay=False)`` drops the CSR on every write and
  pays a full rebuild (factorize + sort + CSR) per query.

Results land in ``BENCH_ingest.json`` at the repo root (the CI smoke
job re-runs this at a small scale and uploads the file alongside the
other bench artifacts).

Environment knobs:

* ``REPRO_BENCH_INGEST_ROWS`` — ingest table size (default 1_000_000);
* ``REPRO_BENCH_INGEST_ROW_SAMPLE`` — row-INSERT sample size
  (default min(rows, 50_000));
* ``REPRO_BENCH_INGEST_EDGES`` — graph edge count (default rows/5);
* ``REPRO_BENCH_INGEST_OUT`` — output path for ``BENCH_ingest.json``.

The >=5x bulk-ingest floor and the overlay-beats-rebuild assertion
only apply at full scale (>= 1M rows): below that fixed costs dominate
and the numbers are smoke signal only.

(The file is ``test_ingest_bulk.py`` rather than ``test_ingest.py``
only because pytest requires unique basenames across ``tests/`` and
``benchmarks/`` — the functional suite owns the shorter name.)
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import Database

ROWS = int(os.environ.get("REPRO_BENCH_INGEST_ROWS", str(1_000_000)))
ROW_SAMPLE = min(
    ROWS, int(os.environ.get("REPRO_BENCH_INGEST_ROW_SAMPLE", str(50_000)))
)
EDGES = int(os.environ.get("REPRO_BENCH_INGEST_EDGES", str(max(ROWS // 5, 2_000))))
OUT_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_INGEST_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_ingest.json",
    )
)
#: Floors asserted at full scale.
MIN_BULK_SPEEDUP = 5.0
ASSERT_SPEEDUPS = ROWS >= 1_000_000
DML_ROUNDS = 6

_results: dict[str, dict] = {}


def _flush() -> None:
    OUT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "bulk_ingest_and_graph_overlay",
                "rows": ROWS,
                "row_sample_rows": ROW_SAMPLE,
                "edges": EDGES,
                "min_bulk_speedup_asserted": (
                    MIN_BULK_SPEEDUP if ASSERT_SPEEDUPS else None
                ),
                "ops": _results,
            },
            indent=2,
        )
        + "\n"
    )


def _record(op: str, entry: dict, capsys, line: str) -> None:
    _results[op] = entry
    _flush()
    with capsys.disabled():
        print(f"\n{op}: {line}")


TAGS = [f"tag_{i:02d}" for i in range(16)]
DDL = "CREATE TABLE t (id BIGINT, v DOUBLE, tag VARCHAR)"
CHECKSUM = (
    "SELECT count(*), sum(id), min(id), max(id), sum(v), count(tag) FROM t"
)


@pytest.fixture(scope="module")
def ingest_data():
    rng = np.random.default_rng(20260808)
    ids = np.arange(ROWS, dtype=np.int64)
    values = rng.random(ROWS)
    tags = np.array(TAGS, dtype=object)[rng.integers(0, len(TAGS), size=ROWS)]
    return ids, values, tags


class TestIngestBenchmarks:
    def test_bulk_vs_row_insert(self, ingest_data, capsys):
        ids, values, tags = ingest_data

        # --- row path: prepared INSERT per tuple over the prefix sample
        # (tuples prebuilt, so the timing covers the engine, not Python
        # list construction; the prefix understates row cost — see the
        # module docstring — keeping the speedup conservative)
        rows = list(
            zip(
                map(int, ids[:ROW_SAMPLE]),
                map(float, values[:ROW_SAMPLE]),
                tags[:ROW_SAMPLE],
            )
        )
        row_db = Database()
        row_db.execute(DDL)
        with row_db.connect() as session:
            start = time.perf_counter()
            session.executemany("INSERT INTO t VALUES (?, ?, ?)", rows)
            row_s = time.perf_counter() - start

        # --- bulk path: one columnar batch; best of 3 fresh databases
        bulk_s, bulk_db = None, None
        for _ in range(3):
            db = Database()
            db.execute(DDL)
            start = time.perf_counter()
            db.appender("t").append({"id": ids, "v": values, "tag": tags})
            elapsed = time.perf_counter() - start
            if bulk_s is None or elapsed < bulk_s:
                bulk_s = elapsed
                if bulk_db is not None:
                    bulk_db.close()
                bulk_db = db
            else:
                db.close()

        # ids are arange, so the shared prefix is WHERE id < sample
        prefix_checksum = CHECKSUM + f" WHERE id < {ROW_SAMPLE}"
        assert repr(row_db.execute(prefix_checksum).rows()) == repr(
            bulk_db.execute(prefix_checksum).rows()
        )
        row_db.close()
        bulk_db.close()
        row_rps = ROW_SAMPLE / row_s
        bulk_rps = ROWS / bulk_s
        speedup = bulk_rps / row_rps
        _record(
            "bulk_vs_row_insert",
            {
                "rows": ROWS,
                "row_sample_rows": ROW_SAMPLE,
                "row_insert_s": round(row_s, 6),
                "bulk_append_s": round(bulk_s, 6),
                "row_insert_rows_per_s": round(row_rps, 1),
                "bulk_rows_per_s": round(bulk_rps, 1),
                "speedup": round(speedup, 2),
            },
            capsys,
            f"row {row_rps:,.0f} rows/s ({ROW_SAMPLE:,} rows) | bulk "
            f"{bulk_rps:,.0f} rows/s ({ROWS:,} rows) | {speedup:6.2f}x",
        )
        if ASSERT_SPEEDUPS:
            assert speedup >= MIN_BULK_SPEEDUP

    def test_dml_then_path_query(self, capsys):
        rng = np.random.default_rng(20260809)
        n_vertices = max(EDGES // 4, 64)
        src = rng.integers(0, n_vertices, size=EDGES).astype(np.int64)
        dst = rng.integers(0, n_vertices, size=EDGES).astype(np.int64)
        weights = rng.integers(1, 10, size=EDGES).astype(np.int64)
        query = (
            "SELECT CHEAPEST SUM(1) "
            "WHERE 0 REACHES 1 OVER edges EDGE (s, d)"
        )

        def build(**kwargs):
            db = Database(**kwargs)
            db.execute("CREATE TABLE edges (s BIGINT, d BIGINT, w BIGINT)")
            db.appender("edges").append({"s": src, "d": dst, "w": weights})
            db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
            db.execute(query)  # warm: build the base CSR
            return db

        timings: dict[str, float] = {}
        answers: dict[str, list] = {}
        overlay_stats: dict[str, int] = {}
        for label, kwargs in (
            ("overlay", {}),
            ("rebuild", {"graph_overlay": False}),
        ):
            db = build(**kwargs)
            total = 0.0
            results = []
            for i in range(DML_ROUNDS):
                dml = (
                    f"INSERT INTO edges VALUES "
                    f"({i % n_vertices}, {(i * 7 + 3) % n_vertices}, 1)"
                )
                start = time.perf_counter()
                db.execute(dml)
                results.append(db.execute(query).rows())
                total += time.perf_counter() - start
            timings[label] = total
            answers[label] = results
            if label == "overlay":
                stats = db.graph_indices.stats()
                overlay_stats = {
                    "overlay_hits": stats["overlay_hits"],
                    "overlay_applied": stats["overlay_applied"],
                    "overlay_merges": stats["overlay_merges"],
                }
            db.close()

        assert repr(answers["overlay"]) == repr(answers["rebuild"])
        speedup = (
            timings["rebuild"] / timings["overlay"]
            if timings["overlay"]
            else float("inf")
        )
        _record(
            "dml_then_path_query",
            {
                "edges": EDGES,
                "rounds": DML_ROUNDS,
                "overlay_s": round(timings["overlay"], 6),
                "rebuild_s": round(timings["rebuild"], 6),
                "overlay_round_ms": round(
                    timings["overlay"] / DML_ROUNDS * 1000, 3
                ),
                "rebuild_round_ms": round(
                    timings["rebuild"] / DML_ROUNDS * 1000, 3
                ),
                "speedup": round(speedup, 2),
                **overlay_stats,
            },
            capsys,
            f"rebuild {timings['rebuild'] * 1000:9.2f} ms | overlay "
            f"{timings['overlay'] * 1000:9.2f} ms | {speedup:6.2f}x "
            f"(applied {overlay_stats['overlay_applied']}, "
            f"merges {overlay_stats['overlay_merges']})",
        )
        if ASSERT_SPEEDUPS:
            assert timings["overlay"] < timings["rebuild"]
