"""Experiment: compressed columnar storage vs the plain-array paths.

Three measurements over the same generated data, each run on
``Database()`` (resting encodings + zone maps) and
``Database(compression=False)`` (the plain oracle):

* **zone_skip_scan** — a selective equality/range filter over a sorted
  BIGINT column: the compressed engine consults per-morsel zone maps
  and scans only the surviving morsels;
* **resting_codes_group_by** — GROUP BY on a low-cardinality VARCHAR
  with the factorize memo disabled, so the plain engine pays a fresh
  sort-based encode per statement while the compressed engine reads
  the resting dictionary codes (an ``astype``);
* **image_bytes** — ``save()`` image size, encoded format v4 vs the
  plain layout.

Results are asserted identical between the engines on every run;
timings and byte counts land in ``BENCH_storage.json`` at the repo
root (the CI smoke job re-runs this at a small scale and uploads the
file alongside the other bench artifacts).

Environment knobs:

* ``REPRO_BENCH_STORAGE_ROWS`` — table size (default 1_000_000);
* ``REPRO_BENCH_STORAGE_OUT`` — output path for ``BENCH_storage.json``.

The >=2x zone-skip assertion and the image-shrink assertion only apply
at full scale (>= 1M rows): below that fixed costs dominate and the
numbers are smoke signal only.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import Database
from repro.storage import Column, DataType

ROWS = int(os.environ.get("REPRO_BENCH_STORAGE_ROWS", str(1_000_000)))
GROUPS = 24
OUT_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_STORAGE_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_storage.json",
    )
)
#: Floors asserted at full scale.
MIN_SCAN_SPEEDUP = 2.0
ASSERT_SPEEDUPS = ROWS >= 1_000_000

_results: dict[str, dict] = {}


def _flush() -> None:
    OUT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "storage_compression",
                "rows": ROWS,
                "min_scan_speedup_asserted": (
                    MIN_SCAN_SPEEDUP if ASSERT_SPEEDUPS else None
                ),
                "ops": _results,
            },
            indent=2,
        )
        + "\n"
    )


@pytest.fixture(scope="module")
def engines():
    rng = np.random.default_rng(20260807)
    ids = np.arange(ROWS, dtype=np.int64)
    grp_dict = np.array([f"segment_{i:02d}" for i in range(GROUPS)], dtype=object)
    grp = grp_dict[rng.integers(0, GROUPS, size=ROWS)]
    values = rng.random(ROWS)
    built = []
    for compression in (True, False):
        db = Database(compression=compression)
        db.execute("CREATE TABLE t (id BIGINT, grp VARCHAR, v DOUBLE)")
        db.table("t").insert_columns(
            [
                Column(DataType.BIGINT, ids.copy()),
                Column(DataType.VARCHAR, grp.copy()),
                Column(DataType.DOUBLE, values.copy()),
            ]
        )
        db.execute("ANALYZE")
        built.append(db)
    yield built[0], built[1]
    for db in built:
        db.execute("DROP TABLE t")
    import gc

    gc.collect()


def _time(db: Database, sql: str, repeats: int):
    """Best wall time over ``repeats`` runs after one uncounted warm-up
    (both engines pay it, so plan caching cannot skew the speedups)."""
    db.execute(sql)
    best, result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = db.execute(sql)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _record(op: str, entry: dict, capsys, line: str) -> None:
    _results[op] = entry
    _flush()
    with capsys.disabled():
        print(f"\n{op}: {line}")


class TestStorageBenchmarks:
    def test_zone_skip_scan(self, engines, capsys):
        compressed, plain = engines
        queries = [
            f"SELECT id, v FROM t WHERE id = {ROWS - 1}",
            f"SELECT count(*), sum(v) FROM t WHERE id >= {ROWS - ROWS // 64}",
        ]
        comp_s = plain_s = 0.0
        for sql in queries:
            c_s, c_result = _time(compressed, sql, 5)
            p_s, p_result = _time(plain, sql, 5)
            assert repr(c_result.rows()) == repr(p_result.rows()), sql
            comp_s += c_s
            plain_s += p_s
        stats = compressed.storage_stats()
        assert stats["morsels_skipped"] > 0  # the maps actually skipped
        speedup = plain_s / comp_s if comp_s else float("inf")
        _record(
            "zone_skip_scan",
            {
                "sql": queries,
                "compressed_s": round(comp_s, 6),
                "plain_s": round(plain_s, 6),
                "speedup": round(speedup, 2),
                "morsels_skipped": stats["morsels_skipped"],
                "morsels_total": stats["morsels_total"],
            },
            capsys,
            f"plain {plain_s * 1000:9.2f} ms | compressed "
            f"{comp_s * 1000:9.2f} ms | {speedup:6.2f}x "
            f"(skipped {stats['morsels_skipped']}/{stats['morsels_total']})",
        )
        if ASSERT_SPEEDUPS:
            assert speedup >= MIN_SCAN_SPEEDUP

    def test_resting_codes_group_by(self, engines, capsys, monkeypatch):
        import repro.storage.column as column_module

        compressed, plain = engines
        # disable the factorize memo on both engines: every statement
        # must produce its codes from scratch — the compressed engine
        # reads the resting dictionary, the plain engine re-encodes
        monkeypatch.setattr(column_module, "FACTORIZE_MEMO_MAX_ROWS", 0)
        for db in (compressed, plain):
            for col in db.table("t").current().columns:
                col._fact_memo = None  # drop memos built before the patch
        sql = "SELECT grp, count(*), sum(v) FROM t GROUP BY grp"
        comp_s, c_result = _time(compressed, sql, 5)
        plain_s, p_result = _time(plain, sql, 5)
        assert sorted(map(repr, c_result.rows())) == sorted(
            map(repr, p_result.rows())
        )
        speedup = plain_s / comp_s if comp_s else float("inf")
        _record(
            "resting_codes_group_by",
            {
                "sql": sql,
                "compressed_s": round(comp_s, 6),
                "plain_s": round(plain_s, 6),
                "speedup": round(speedup, 2),
            },
            capsys,
            f"plain {plain_s * 1000:9.2f} ms | compressed "
            f"{comp_s * 1000:9.2f} ms | {speedup:6.2f}x",
        )

    def test_image_bytes(self, engines, capsys, tmp_path):
        compressed, plain = engines
        sizes = {}
        for label, db in (("encoded", compressed), ("plain", plain)):
            target = tmp_path / label
            db.save(str(target))
            total = sum(
                p.stat().st_size for p in target.rglob("*") if p.is_file()
            )
            sizes[label] = total
        reduction = 1.0 - sizes["encoded"] / sizes["plain"]
        _record(
            "image_bytes",
            {
                "plain_bytes": sizes["plain"],
                "encoded_bytes": sizes["encoded"],
                "reduction_pct": round(reduction * 100, 1),
            },
            capsys,
            f"plain {sizes['plain']:,} B | encoded {sizes['encoded']:,} B "
            f"| {reduction * 100:5.1f}% smaller",
        )
        if ASSERT_SPEEDUPS:
            assert sizes["encoded"] < sizes["plain"]
