"""Quickstart: the SQL shortest-path extension in five minutes.

Run with::

    python examples/quickstart.py

Walks through the paper's core constructs on a toy graph: the REACHES
predicate, CHEAPEST SUM for unweighted and weighted shortest paths,
paths as nested tables, and UNNEST to flatten them.
"""

from repro import Database


def main() -> None:
    db = Database()

    # A graph is just an edge table (Section 2): each row is one directed
    # edge, extra columns are edge properties.
    db.executescript(
        """
        CREATE TABLE flights (
            origin VARCHAR, destination VARCHAR, minutes INT, price DOUBLE
        );
        INSERT INTO flights VALUES
            ('AMS', 'LHR',  80,  95.0),
            ('AMS', 'CDG',  85,  70.0),
            ('LHR', 'JFK', 490, 420.0),
            ('CDG', 'JFK', 505, 380.0),
            ('AMS', 'JFK', 540, 650.0),
            ('JFK', 'SFO', 390, 210.0);
        """
    )

    print("== reachability ==")
    rows = db.execute(
        "SELECT 'reachable' WHERE 'AMS' REACHES 'SFO' "
        "OVER flights EDGE (origin, destination)"
    ).rows()
    print("AMS -> SFO:", rows[0][0] if rows else "unreachable")

    print("\n== unweighted shortest path (hop count) ==")
    hops = db.execute(
        "SELECT CHEAPEST SUM(1) WHERE 'AMS' REACHES 'SFO' "
        "OVER flights EDGE (origin, destination)"
    ).scalar()
    print("fewest hops AMS -> SFO:", hops)

    print("\n== weighted shortest paths ==")
    for label, weight_expr in (("fastest", "f: minutes"), ("cheapest", "f: price")):
        cost, path = db.execute(
            f"SELECT CHEAPEST SUM({weight_expr}) AS (cost, path) "
            "WHERE 'AMS' REACHES 'SFO' OVER flights f EDGE (origin, destination)"
        ).rows()[0]
        route = " -> ".join(
            [path.to_rows()[0][0]] + [row[1] for row in path.to_rows()]
        )
        print(f"{label}: cost={cost} route={route}")

    print("\n== weight expressions are arbitrary (Section 2) ==")
    cost = db.execute(
        "SELECT CHEAPEST SUM(f: CAST(price + minutes * 0.5 AS double)) "
        "WHERE 'AMS' REACHES 'JFK' OVER flights f EDGE (origin, destination)"
    ).scalar()
    print("price + 0.5*minutes objective:", cost)

    print("\n== paths are nested tables; UNNEST flattens them ==")
    rows = db.execute(
        """
        SELECT R.ordinality, R.origin, R.destination, R.minutes
        FROM (
            SELECT CHEAPEST SUM(f: minutes) AS (cost, path)
            WHERE 'AMS' REACHES 'SFO' OVER flights f EDGE (origin, destination)
        ) T, UNNEST(T.path) WITH ORDINALITY AS R
        ORDER BY R.ordinality
        """
    ).rows()
    for ordinal, origin, dest, minutes in rows:
        print(f"  leg {ordinal}: {origin} -> {dest} ({minutes} min)")

    print("\n== the result of a graph query is an ordinary table ==")
    rows = db.execute(
        """
        SELECT t.city, t.hops
        FROM (
            SELECT c.city, CHEAPEST SUM(1) AS hops
            FROM (SELECT DISTINCT destination AS city FROM flights) c
            WHERE 'AMS' REACHES c.city OVER flights EDGE (origin, destination)
        ) t
        ORDER BY t.hops, t.city
        """
    ).rows()
    for city, hops in rows:
        print(f"  {city}: {hops} hop(s) from AMS")


if __name__ == "__main__":
    main()
