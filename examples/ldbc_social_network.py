"""The paper's evaluation workload on a synthetic LDBC-like social network.

Run with::

    python examples/ldbc_social_network.py [--sf 1] [--scale 0.01]
    python examples/ldbc_social_network.py --table1

Loads a generated friendship graph and runs the Section 4 queries — Q13
(unweighted shortest-path cost) and the weighted Q14 variant — plus the
appendix-style reachability/path queries, reporting latencies.
"""

import argparse
import time

from repro.harness import format_table, table1
from repro.ldbc import (
    generate,
    make_database,
    random_pairs,
    run_q13,
    run_q13_batch,
    run_q14_variant,
)


def show_table1(scale: float) -> None:
    rows = table1(scale=scale)
    for row in rows:
        row["vertices_x1000"] = round(row["vertices"] / 1000, 3)
        row["edges_x1000"] = round(row["edges"] / 1000, 1)
    print(f"Table 1 shape at scale={scale} (paper numbers in brackets):")
    print(
        format_table(
            rows,
            columns=(
                "scale_factor",
                "vertices",
                "edges",
                "paper_vertices",
                "paper_edges",
            ),
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sf", type=float, default=1, help="scale factor")
    parser.add_argument("--scale", type=float, default=0.01, help="global shrink")
    parser.add_argument("--pairs", type=int, default=10, help="random pairs to query")
    parser.add_argument("--table1", action="store_true", help="print Table 1 and exit")
    args = parser.parse_args()

    if args.table1:
        show_table1(args.scale)
        return

    print(f"generating SF {args.sf} at scale {args.scale} ...")
    network = generate(args.sf, scale=args.scale)
    print(f"  {network.num_persons} persons, {network.num_directed_edges} directed edges")

    start = time.perf_counter()
    db = make_database(network)
    print(f"  loaded in {time.perf_counter() - start:.2f}s")

    pairs = random_pairs(network, args.pairs)

    print("\nQ13 — unweighted shortest-path cost (per pair):")
    for source, dest in pairs[:5]:
        start = time.perf_counter()
        cost = run_q13(db, source, dest)
        elapsed = (time.perf_counter() - start) * 1000
        print(f"  {source} -> {dest}: {cost}   ({elapsed:.1f} ms)")

    print("\nQ14 variant — weighted shortest path with affinity weights:")
    for source, dest in pairs[:3]:
        start = time.perf_counter()
        result = run_q14_variant(db, source, dest)
        elapsed = (time.perf_counter() - start) * 1000
        if result is None:
            print(f"  {source} -> {dest}: unreachable   ({elapsed:.1f} ms)")
        else:
            cost, path = result
            print(
                f"  {source} -> {dest}: cost {cost / 10.0} over {len(path)} edges"
                f"   ({elapsed:.1f} ms)"
            )

    print(f"\nQ13 batched ({len(pairs)} pairs in one statement, Figure 1b style):")
    start = time.perf_counter()
    rows = run_q13_batch(db, pairs)
    elapsed = time.perf_counter() - start
    print(
        f"  {len(rows)} connected pairs; {elapsed * 1000:.1f} ms total, "
        f"{elapsed / len(pairs) * 1000:.2f} ms per pair"
    )

    print("\nfriends-of-friends within early friendships (appendix A.3 style):")
    person = pairs[0][0]
    rows = db.execute(
        """
        WITH early AS (
            SELECT * FROM knows WHERE creationDate < '2011-07-01'
        )
        SELECT count(*) FROM persons
        WHERE ? REACHES id OVER early EDGE (person1, person2)
        """,
        (person,),
    ).rows()
    print(f"  persons reachable from {person} over early friendships: {rows[0][0]}")


if __name__ == "__main__":
    main()
