"""Regenerate the paper's full evaluation section in one run.

Run with::

    python examples/reproduce_paper.py [--scale 0.01] [--pairs 20] [--full]

Prints Table 1, Figure 1a and Figure 1b (as data series), the cost-split
ablation behind the paper's "graph construction dominates" claim, and
the baseline comparison — everything EXPERIMENTS.md records, regenerated
live.  ``--full`` includes scale factors 100 and 300 (slower).
"""

import argparse
import time

import numpy as np

from repro.baselines import PsmShortestPath, run_q13_chain, run_q13_recursive
from repro.graph import GraphLibrary, bfs, bidirectional_distance
from repro.harness import fig1a, fig1a_chart, fig1b, fig1b_chart, format_table, table1
from repro.ldbc import generate, make_database, random_pairs, run_q13


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--pairs", type=int, default=20)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()

    sfs = (1, 3, 10, 30, 100, 300) if args.full else (1, 3, 10, 30)

    print("=" * 72)
    print("Table 1 — size of the graph at different scale factors")
    print("=" * 72)
    rows = table1(scale_factors=sfs, scale=args.scale)
    print(
        format_table(
            rows,
            columns=(
                "scale_factor",
                "vertices",
                "edges",
                "paper_vertices",
                "paper_edges",
            ),
        )
    )

    print("\nloading databases ...")
    databases = {}
    networks = {}
    for sf in sfs:
        networks[sf] = generate(sf, scale=args.scale)
        start = time.perf_counter()
        databases[sf] = make_database(networks[sf])
        print(f"  SF {sf}: {time.perf_counter() - start:.2f}s")

    print()
    print("=" * 72)
    print("Figure 1a — average latency per query")
    print("=" * 72)
    rows = fig1a(
        scale_factors=sfs,
        pairs_per_sf=args.pairs,
        scale=args.scale,
        databases=databases,
    )
    for row in rows:
        row["avg_ms"] = round(row["avg_latency_s"] * 1000, 2)
    print(format_table(rows, columns=("scale_factor", "query", "avg_ms")))
    print()
    print(fig1a_chart(rows))

    print()
    print("=" * 72)
    print("Figure 1b — latency per pair at varying batch sizes")
    print("=" * 72)
    rows = fig1b(
        scale_factors=sfs,
        repeats=2,
        scale=args.scale,
        databases=databases,
    )
    for row in rows:
        row["per_pair_ms"] = round(row["avg_latency_per_pair_s"] * 1000, 3)
    print(format_table(rows, columns=("scale_factor", "batch_size", "per_pair_ms")))
    print()
    print(fig1b_chart(rows))

    sf = max(sfs)
    network, db = networks[sf], databases[sf]
    print()
    print("=" * 72)
    print(f"A2 — cost split at SF {sf}: graph build vs one traversal")
    print("=" * 72)
    src, dst, _, _ = network.directed_edges()
    start = time.perf_counter()
    library = GraphLibrary(src, dst)
    build = time.perf_counter() - start
    encoded = library.domain.encode(
        np.random.default_rng(5).choice(network.person_ids, size=20)
    )
    start = time.perf_counter()
    for i in range(10):
        bfs(library.csr, int(encoded[i]), targets=np.array([int(encoded[i + 10])]))
    traverse = (time.perf_counter() - start) / 10
    print(f"build:    {build * 1000:8.2f} ms  (once per query without an index)")
    print(f"traverse: {traverse * 1000:8.2f} ms  (one early-exit BFS)")
    print(f"-> construction is {build / max(traverse, 1e-9):.0f}x the traversal")

    print()
    print("=" * 72)
    print(f"A6 — unidirectional vs bidirectional BFS on the prepared SF {sf} graph")
    print("=" * 72)
    library.reverse  # prepare the transpose once
    pairs = [(int(encoded[i]), int(encoded[i + 10])) for i in range(10)]
    start = time.perf_counter()
    for s, t in pairs:
        bfs(library.csr, s, targets=np.array([t]))
    uni = (time.perf_counter() - start) / len(pairs)
    start = time.perf_counter()
    for s, t in pairs:
        bidirectional_distance(library.csr, library.reverse, s, t)
    bidir = (time.perf_counter() - start) / len(pairs)
    print(f"unidirectional: {uni * 1000:8.2f} ms/pair")
    print(f"bidirectional:  {bidir * 1000:8.2f} ms/pair  ({uni / max(bidir, 1e-9):.1f}x)")

    print()
    print("=" * 72)
    print("A3 — the extension vs the three 'customary means' (Section 1), SF 1")
    print("=" * 72)
    small_db = databases[min(sfs)]
    small_net = networks[min(sfs)]
    sample = random_pairs(small_net, 10, seed=3)
    psm = PsmShortestPath(small_db)
    approaches = [
        ("REACHES / CHEAPEST SUM", lambda s, d: run_q13(small_db, s, d)),
        ("recursive CTE", lambda s, d: run_q13_recursive(small_db, s, d, max_hops=6)),
        ("PSM-style procedure", psm),
        ("chain of joins (<=2 hops)", lambda s, d: run_q13_chain(small_db, s, d, max_hops=2)),
    ]
    for name, runner in approaches:
        start = time.perf_counter()
        for s, d in sample:
            runner(s, d)
        avg = (time.perf_counter() - start) / len(sample)
        print(f"{name:28s} {avg * 1000:8.2f} ms/query")

    print()
    print("=" * 72)
    print("Per-operator profile of one Q13 (the paper's Section 4 finding)")
    print("=" * 72)
    s, d = random_pairs(network, 1, seed=9)[0]
    _, report = db.profile(
        "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER knows EDGE (person1, person2)",
        (s, d),
    )
    print(report)


if __name__ == "__main__":
    main()
