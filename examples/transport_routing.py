"""Transportation-network routing — one of the motivating domains from
the paper's introduction ("routing in transportation networks").

Run with::

    python examples/transport_routing.py

Builds a small metro network with per-segment travel times and line
metadata, then answers routing questions through the SQL extension:
time-optimal routes, line-change penalties via weight expressions,
subgraph routing with CTEs (closed segments), and a graph index for
repeated queries.
"""

from repro import Database

NETWORK = """
CREATE TABLE stations (code VARCHAR, name VARCHAR, zone INT);
CREATE TABLE segments (
    from_st VARCHAR, to_st VARCHAR, line VARCHAR, minutes INT, open INT
);
INSERT INTO stations VALUES
    ('CEN', 'Central', 1),
    ('MUS', 'Museum', 1),
    ('UNI', 'University', 1),
    ('HBR', 'Harbour', 2),
    ('AIR', 'Airport', 3),
    ('PRK', 'Park', 2),
    ('STD', 'Stadium', 3);
INSERT INTO segments VALUES
    ('CEN', 'MUS', 'red',    3, 1),
    ('MUS', 'CEN', 'red',    3, 1),
    ('MUS', 'UNI', 'red',    4, 1),
    ('UNI', 'MUS', 'red',    4, 1),
    ('CEN', 'HBR', 'blue',   6, 1),
    ('HBR', 'CEN', 'blue',   6, 1),
    ('HBR', 'PRK', 'blue',   5, 1),
    ('PRK', 'HBR', 'blue',   5, 1),
    ('PRK', 'AIR', 'blue',  12, 1),
    ('AIR', 'PRK', 'blue',  12, 1),
    ('UNI', 'STD', 'green',  7, 1),
    ('STD', 'UNI', 'green',  7, 1),
    ('STD', 'AIR', 'green',  9, 1),
    ('AIR', 'STD', 'green',  9, 1),
    ('CEN', 'AIR', 'express', 18, 1),
    ('AIR', 'CEN', 'express', 18, 0);
"""


def main() -> None:
    db = Database()
    db.executescript(NETWORK)

    print("== fastest route Central -> Airport ==")
    cost, path = db.execute(
        "SELECT CHEAPEST SUM(seg: minutes) AS (cost, path) "
        "WHERE 'CEN' REACHES 'AIR' OVER segments seg EDGE (from_st, to_st)"
    ).rows()[0]
    print(f"total {cost} minutes")
    for leg in path.to_dicts():
        print(f"  {leg['from_st']} -> {leg['to_st']}  [{leg['line']}] {leg['minutes']} min")

    print("\n== prefer fewer stops (unweighted) ==")
    hops = db.execute(
        "SELECT CHEAPEST SUM(1) WHERE 'CEN' REACHES 'AIR' "
        "OVER segments EDGE (from_st, to_st)"
    ).scalar()
    print(f"fewest segments: {hops}")

    print("\n== penalize slow lines via a weight expression ==")
    cost = db.execute(
        "SELECT CHEAPEST SUM(seg: minutes + CASE WHEN line = 'express' "
        "THEN 10 ELSE 0 END) "
        "WHERE 'CEN' REACHES 'AIR' OVER segments seg EDGE (from_st, to_st)"
    ).scalar()
    print(f"with a 10-minute express surcharge, best cost: {cost}")

    print("\n== route around closed segments (CTE subgraph, A.3 pattern) ==")
    rows = db.execute(
        """
        WITH running AS (SELECT * FROM segments WHERE open = 1)
        SELECT s.name, CHEAPEST SUM(seg: minutes) AS total
        FROM stations s
        WHERE 'AIR' REACHES s.code OVER running seg EDGE (from_st, to_st)
        ORDER BY total
        """
    ).rows()
    for name, total in rows:
        print(f"  Airport -> {name}: {total} min")

    print("\n== all-pairs travel matrix (graph join) for zone 1 -> zone 3 ==")
    rows = db.execute(
        """
        SELECT a.name, b.name, CHEAPEST SUM(seg: minutes) AS minutes
        FROM stations a, stations b
        WHERE a.zone = 1 AND b.zone = 3
          AND a.code REACHES b.code OVER segments seg EDGE (from_st, to_st)
        ORDER BY minutes
        """
    ).rows()
    for origin, dest, minutes in rows:
        print(f"  {origin} -> {dest}: {minutes} min")

    print("\n== repeated queries benefit from a graph index (Section 6) ==")
    db.execute("CREATE GRAPH INDEX seg_idx ON segments EDGE (from_st, to_st)")
    for target in ("MUS", "HBR", "STD"):
        minutes = db.execute(
            "SELECT CHEAPEST SUM(seg: minutes) "
            "WHERE 'CEN' REACHES ? OVER segments seg EDGE (from_st, to_st)",
            (target,),
        ).scalar()
        print(f"  CEN -> {target}: {minutes} min (served from the prepared CSR)")


if __name__ == "__main__":
    main()
