"""Build-dependency analysis — the paper's "control flow optimization"
style of use case: reachability over a DAG of artifacts.

Run with::

    python examples/dependency_analysis.py

Shows REACHES as an impact-analysis primitive (which targets rebuild
when a file changes?), compares it against the WITH RECURSIVE baseline
from the paper's introduction, and uses CHEAPEST SUM to find the
critical (longest-ish via inverted weights) and cheapest build chains.
"""

from repro import Database
from repro.baselines import run_q13_recursive

SCHEMA = """
CREATE TABLE artifacts (name VARCHAR, kind VARCHAR);
CREATE TABLE depends (consumer VARCHAR, producer VARCHAR, build_cost INT);
INSERT INTO artifacts VALUES
    ('app',      'binary'),
    ('libui',    'library'),
    ('libnet',   'library'),
    ('libcore',  'library'),
    ('codegen',  'tool'),
    ('proto',    'schema'),
    ('util.h',   'header');
-- consumer depends on producer: an edge producer -> consumer means
-- "a change in producer reaches (rebuilds) consumer"
INSERT INTO depends VALUES
    ('app',     'libui',   5),
    ('app',     'libnet',  4),
    ('libui',   'libcore', 7),
    ('libnet',  'libcore', 6),
    ('libnet',  'proto',   2),
    ('proto',   'codegen', 3),
    ('libcore', 'util.h',  1);
"""


def main() -> None:
    db = Database()
    db.executescript(SCHEMA)

    print("== impact analysis: what rebuilds when util.h changes? ==")
    rows = db.execute(
        """
        SELECT a.name, a.kind
        FROM artifacts a
        WHERE 'util.h' REACHES a.name OVER depends EDGE (producer, consumer)
          AND a.name <> 'util.h'
        ORDER BY a.name
        """
    ).rows()
    for name, kind in rows:
        print(f"  {name} ({kind})")

    print("\n== rebuild depth (how many layers until app rebuilds) ==")
    depth = db.execute(
        "SELECT CHEAPEST SUM(1) WHERE 'util.h' REACHES 'app' "
        "OVER depends EDGE (producer, consumer)"
    ).scalar()
    print(f"  util.h is {depth} dependency levels below app")

    print("\n== cheapest rebuild chain from proto to app ==")
    cost, path = db.execute(
        "SELECT CHEAPEST SUM(d: build_cost) AS (cost, path) "
        "WHERE 'proto' REACHES 'app' OVER depends d EDGE (producer, consumer)"
    ).rows()[0]
    print(f"  total build cost {cost}:")
    for step in path.to_dicts():
        print(
            f"    rebuild {step['consumer']} (depends on {step['producer']}, "
            f"cost {step['build_cost']})"
        )

    print("\n== agreement with the recursive-CTE baseline (Section 1) ==")
    extension = db.execute(
        "SELECT CHEAPEST SUM(1) WHERE 'util.h' REACHES 'app' "
        "OVER depends EDGE (producer, consumer)"
    ).scalar()
    baseline = run_q13_recursive(
        db,
        "util.h",
        "app",
        edge_table="depends",
        src_col="producer",
        dst_col="consumer",
    )
    print(f"  extension: {extension} hops, WITH RECURSIVE baseline: {baseline} hops")

    print("\n== leaf artifacts nothing depends on (plain SQL mixes in) ==")
    rows = db.execute(
        """
        SELECT a.name FROM artifacts a
        WHERE a.name NOT IN (SELECT producer FROM depends)
        ORDER BY a.name
        """
    ).rows()
    print("  " + ", ".join(name for (name,) in rows))


if __name__ == "__main__":
    main()
