"""Unit tests for the logical type system."""

import datetime as dt

import pytest

from repro.errors import TypeError_
from repro.storage import (
    DataType,
    coerce_python_value,
    comparable,
    date_to_days,
    days_to_date,
    infer_literal_type,
    parse_date_literal,
    parse_type_name,
    promote,
)


class TestParseTypeName:
    def test_integer_aliases(self):
        for name in ("int", "INTEGER", "SmallInt"):
            assert parse_type_name(name) == DataType.INTEGER

    def test_bigint(self):
        assert parse_type_name("bigint") == DataType.BIGINT

    def test_double_aliases(self):
        for name in ("double", "float", "real", "decimal", "numeric"):
            assert parse_type_name(name) == DataType.DOUBLE

    def test_varchar_aliases(self):
        for name in ("varchar", "text", "char", "string"):
            assert parse_type_name(name) == DataType.VARCHAR

    def test_date(self):
        assert parse_type_name("date") == DataType.DATE

    def test_boolean(self):
        assert parse_type_name("boolean") == DataType.BOOLEAN

    def test_unknown_raises(self):
        with pytest.raises(TypeError_):
            parse_type_name("blob")


class TestPromote:
    def test_same_type(self):
        assert promote(DataType.INTEGER, DataType.INTEGER) == DataType.INTEGER

    def test_int_bigint(self):
        assert promote(DataType.INTEGER, DataType.BIGINT) == DataType.BIGINT

    def test_int_double(self):
        assert promote(DataType.INTEGER, DataType.DOUBLE) == DataType.DOUBLE

    def test_bool_int(self):
        assert promote(DataType.BOOLEAN, DataType.INTEGER) == DataType.INTEGER

    def test_varchar_int_raises(self):
        with pytest.raises(TypeError_):
            promote(DataType.VARCHAR, DataType.INTEGER)

    def test_symmetric(self):
        assert promote(DataType.DOUBLE, DataType.BIGINT) == promote(
            DataType.BIGINT, DataType.DOUBLE
        )


class TestComparable:
    def test_numeric_mix(self):
        assert comparable(DataType.INTEGER, DataType.DOUBLE)

    def test_same_varchar(self):
        assert comparable(DataType.VARCHAR, DataType.VARCHAR)

    def test_varchar_int(self):
        assert not comparable(DataType.VARCHAR, DataType.INTEGER)

    def test_nested_table_never(self):
        assert not comparable(DataType.NESTED_TABLE, DataType.NESTED_TABLE)


class TestDates:
    def test_roundtrip(self):
        day = dt.date(2010, 3, 24)
        assert days_to_date(date_to_days(day)) == day

    def test_epoch(self):
        assert date_to_days(dt.date(1970, 1, 1)) == 0

    def test_parse_literal(self):
        assert parse_date_literal("1970-01-02") == 1

    def test_parse_invalid(self):
        with pytest.raises(TypeError_):
            parse_date_literal("not-a-date")


class TestInferLiteral:
    def test_bool_is_boolean_not_int(self):
        assert infer_literal_type(True) == DataType.BOOLEAN

    def test_small_int(self):
        assert infer_literal_type(7) == DataType.INTEGER

    def test_large_int_is_bigint(self):
        assert infer_literal_type(2**40) == DataType.BIGINT

    def test_float(self):
        assert infer_literal_type(1.5) == DataType.DOUBLE

    def test_str(self):
        assert infer_literal_type("x") == DataType.VARCHAR

    def test_date(self):
        assert infer_literal_type(dt.date.today()) == DataType.DATE

    def test_unsupported(self):
        with pytest.raises(TypeError_):
            infer_literal_type(object())


class TestCoerce:
    def test_none_passes(self):
        assert coerce_python_value(None, DataType.INTEGER) is None

    def test_int_to_double(self):
        assert coerce_python_value(3, DataType.DOUBLE) == 3.0

    def test_integral_float_to_int(self):
        assert coerce_python_value(3.0, DataType.INTEGER) == 3

    def test_fractional_float_to_int_raises(self):
        with pytest.raises(TypeError_):
            coerce_python_value(3.5, DataType.INTEGER)

    def test_str_to_date(self):
        assert coerce_python_value("1970-01-03", DataType.DATE) == 2

    def test_date_to_date(self):
        assert coerce_python_value(dt.date(1970, 1, 2), DataType.DATE) == 1

    def test_str_to_int_raises(self):
        with pytest.raises(TypeError_):
            coerce_python_value("7", DataType.INTEGER)

    def test_bool_to_int(self):
        assert coerce_python_value(True, DataType.BIGINT) == 1

    def test_int_to_varchar_raises(self):
        with pytest.raises(TypeError_):
            coerce_python_value(7, DataType.VARCHAR)
