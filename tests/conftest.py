"""Shared fixtures: the paper's appendix dataset and small graph DBs."""

from __future__ import annotations

import pytest

from repro import Database


@pytest.fixture
def db() -> Database:
    """A fresh empty database."""
    return Database()


@pytest.fixture
def social_db() -> Database:
    """The appendix's Persons/Friends sample data (Figure 2).

    Friendships are symmetric (both directions inserted), with the
    creation dates and weights used by examples A.1-A.4.
    """
    database = Database()
    database.executescript(
        """
        CREATE TABLE persons (
            id BIGINT, firstName VARCHAR, lastName VARCHAR, gender VARCHAR
        );
        CREATE TABLE friends (
            person1 BIGINT, person2 BIGINT, creationDate DATE, weight DOUBLE
        );
        INSERT INTO persons VALUES
            (933, 'Mahinda', 'Perera', 'male'),
            (1129, 'Carmen', 'Lepland', 'female'),
            (8333, 'Chen', 'Wang', 'male'),
            (4139, 'Otto', 'Richter', 'male');
        INSERT INTO friends VALUES
            (933, 1129, '2010-03-24', 0.5),
            (1129, 933, '2010-03-24', 0.5),
            (1129, 8333, '2010-12-02', 2.0),
            (8333, 1129, '2010-12-02', 2.0),
            (933, 4139, '2012-05-01', 1.0),
            (4139, 933, '2012-05-01', 1.0);
        """
    )
    return database


@pytest.fixture
def chain_db() -> Database:
    """A directed chain 1 -> 2 -> 3 -> 4 -> 5 plus a heavy shortcut 1 -> 5."""
    database = Database()
    database.executescript(
        """
        CREATE TABLE edges (s INT, d INT, w INT);
        INSERT INTO edges VALUES
            (1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 5, 1), (1, 5, 10);
        """
    )
    return database
