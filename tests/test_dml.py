"""DELETE / UPDATE / CREATE TABLE AS / VALUES table constructor."""

import pytest

from repro import Database
from repro.errors import BindError, CatalogError, ExecutionError, ParseError


@pytest.fixture
def db():
    database = Database()
    database.executescript(
        """
        CREATE TABLE t (a INT, b VARCHAR);
        INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z');
        """
    )
    return database


class TestDelete:
    def test_delete_with_predicate(self, db):
        assert db.execute("DELETE FROM t WHERE a > 1").rowcount == 2
        assert db.execute("SELECT a FROM t").rows() == [(1,)]

    def test_delete_all(self, db):
        assert db.execute("DELETE FROM t").rowcount == 3
        assert db.execute("SELECT count(*) FROM t").scalar() == 0

    def test_delete_nothing(self, db):
        assert db.execute("DELETE FROM t WHERE a > 100").rowcount == 0
        assert db.execute("SELECT count(*) FROM t").scalar() == 3

    def test_delete_with_params(self, db):
        assert db.execute("DELETE FROM t WHERE b = ?", ("y",)).rowcount == 1

    def test_delete_null_predicate_rows_kept(self, db):
        db.execute("INSERT INTO t VALUES (NULL, 'n')")
        db.execute("DELETE FROM t WHERE a > 0")
        assert db.execute("SELECT b FROM t").rows() == [("n",)]

    def test_delete_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("DELETE FROM nope")

    def test_delete_bumps_version(self, db):
        version = db.table("t").version
        db.execute("DELETE FROM t WHERE a = 1")
        assert db.table("t").version == version + 1

    def test_delete_invalidates_graph_index(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2), (2, 3)")
        db.execute("CREATE GRAPH INDEX gi ON e EDGE (s, d)")
        assert db.execute(
            "SELECT 1 WHERE 1 REACHES 3 OVER e EDGE (s, d)"
        ).rows() == [(1,)]
        db.execute("DELETE FROM e WHERE d = 3")
        assert db.execute(
            "SELECT 1 WHERE 1 REACHES 3 OVER e EDGE (s, d)"
        ).rows() == []


class TestUpdate:
    def test_update_with_predicate(self, db):
        assert db.execute("UPDATE t SET b = 'Q' WHERE a >= 2").rowcount == 2
        assert db.execute("SELECT b FROM t ORDER BY a").rows() == [
            ("x",),
            ("Q",),
            ("Q",),
        ]

    def test_update_all_rows(self, db):
        assert db.execute("UPDATE t SET a = a + 10").rowcount == 3
        assert db.execute("SELECT min(a) FROM t").scalar() == 11

    def test_update_multiple_columns(self, db):
        db.execute("UPDATE t SET a = a * 2, b = b || '!' WHERE a = 2")
        assert db.execute("SELECT a, b FROM t WHERE a = 4").rows() == [(4, "y!")]

    def test_update_expression_uses_old_values(self, db):
        # both assignments see the pre-update row
        db.execute("CREATE TABLE swap (x INT, y INT)")
        db.execute("INSERT INTO swap VALUES (1, 2)")
        db.execute("UPDATE swap SET x = y, y = x")
        assert db.execute("SELECT x, y FROM swap").rows() == [(2, 1)]

    def test_update_to_null(self, db):
        db.execute("UPDATE t SET b = NULL WHERE a = 1")
        assert db.execute("SELECT b FROM t WHERE a = 1").rows() == [(None,)]

    def test_update_same_column_twice_rejected(self, db):
        with pytest.raises(BindError, match="twice"):
            db.execute("UPDATE t SET a = 1, a = 2")

    def test_update_type_mismatch_rejected(self, db):
        with pytest.raises(BindError):
            db.execute("UPDATE t SET a = 'text'")

    def test_update_with_params(self, db):
        db.execute("UPDATE t SET b = ? WHERE a = ?", ("new", 3))
        assert db.execute("SELECT b FROM t WHERE a = 3").rows() == [("new",)]

    def test_update_invalidates_graph_index(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2), (2, 3)")
        db.execute("CREATE GRAPH INDEX gi ON e EDGE (s, d)")
        db.execute("UPDATE e SET d = 9 WHERE d = 3")
        assert db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 9 OVER e EDGE (s, d)"
        ).scalar() == 2


class TestCreateTableAs:
    def test_basic(self, db):
        db.execute("CREATE TABLE t2 AS SELECT a * 2 AS dbl FROM t")
        assert db.execute("SELECT dbl FROM t2 ORDER BY dbl").rows() == [
            (2,),
            (4,),
            (6,),
        ]

    def test_reports_rowcount(self, db):
        assert db.execute("CREATE TABLE t2 AS SELECT * FROM t").rowcount == 3

    def test_schema_types_follow_query(self, db):
        from repro.storage import DataType

        db.execute("CREATE TABLE t2 AS SELECT a / 2 AS half, b FROM t")
        schema = db.table("t2").schema
        assert schema.type_of("half") == DataType.DOUBLE
        assert schema.type_of("b") == DataType.VARCHAR

    def test_from_graph_query(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2), (2, 3)")
        db.execute(
            "CREATE TABLE reach AS "
            "SELECT t.a, CHEAPEST SUM(1) AS hops FROM t "
            "WHERE 1 REACHES t.a OVER e EDGE (s, d)"
        )
        assert db.execute("SELECT a, hops FROM reach ORDER BY a").rows() == [
            (1, 0),
            (2, 1),
            (3, 2),
        ]

    def test_nested_table_column_rejected(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2)")
        with pytest.raises(ExecutionError, match="flatten"):
            db.execute(
                "CREATE TABLE bad AS "
                "SELECT CHEAPEST SUM(k: 1) AS (c, p) "
                "WHERE 1 REACHES 2 OVER e k EDGE (s, d)"
            )

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t AS SELECT 1")


class TestValuesConstructor:
    def test_top_level_values(self, db):
        assert db.execute("VALUES (1, 'a'), (2, 'b')").rows() == [
            (1, "a"),
            (2, "b"),
        ]

    def test_default_column_names(self, db):
        result = db.execute("SELECT * FROM (VALUES (1, 2)) v")
        assert result.column_names == ["col1", "col2"]

    def test_column_aliases(self, db):
        rows = db.execute(
            "SELECT y FROM (VALUES (1, 'a'), (2, 'b')) v (x, y) WHERE x = 2"
        ).rows()
        assert rows == [("b",)]

    def test_type_promotion_across_rows(self, db):
        from repro.storage import DataType

        result = db.execute("VALUES (1), (2.5)")
        assert result.rows() == [(1.0,), (2.5,)]

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(BindError, match="arity"):
            db.execute("VALUES (1), (1, 2)")

    def test_values_in_union(self, db):
        rows = db.execute("SELECT 0 UNION VALUES (1), (2) ORDER BY 1").rows()
        assert rows == [(0,), (1,), (2,)]

    def test_values_with_order_by_rejected(self, db):
        with pytest.raises(ParseError):
            db.execute("VALUES (1) ORDER BY 1")

    def test_values_join_table(self, db):
        rows = db.execute(
            "SELECT t.b FROM (VALUES (1), (3)) v (a) JOIN t ON t.a = v.a "
            "ORDER BY t.b"
        ).rows()
        assert rows == [("x",), ("z",)]

    def test_values_as_graph_pairs(self, db):
        # the Figure 1b batch pattern without a temp table
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2), (2, 3)")
        rows = db.execute(
            "SELECT p.src, p.dst, CHEAPEST SUM(1) AS hops "
            "FROM (VALUES (1, 3), (2, 3), (3, 1)) p (src, dst) "
            "WHERE p.src REACHES p.dst OVER e EDGE (s, d) ORDER BY 1"
        ).rows()
        assert rows == [(1, 3, 2), (2, 3, 1)]

    def test_values_with_params(self, db):
        rows = db.execute("SELECT * FROM (VALUES (?), (?)) v ORDER BY 1", (5, 3)).rows()
        assert rows == [(3,), (5,)]
