"""Parser tests for the paper's SQL extension grammar (Section 2/3.1):
REACHES ... OVER ... EDGE, CHEAPEST SUM, AS (ident_list), UNNEST."""

import pytest

from repro.errors import ParseError
from repro.sql import ast, parse_query


class TestReaches:
    def test_basic(self):
        q = parse_query(
            "SELECT * FROM vp WHERE vp.x REACHES vp.y OVER e EDGE (s, d)"
        )
        reaches = q.where
        assert isinstance(reaches, ast.Reaches)
        assert reaches.src_cols == ("s",) and reaches.dst_cols == ("d",)
        assert reaches.binding is None

    def test_with_binding(self):
        q = parse_query("SELECT * FROM vp WHERE x REACHES y OVER e f EDGE (s, d)")
        assert q.where.binding == "f"

    def test_params_as_endpoints(self):
        q = parse_query("SELECT 1 WHERE ? REACHES ? OVER e EDGE (s, d)")
        assert isinstance(q.where.source[0], ast.Param)
        assert isinstance(q.where.dest[0], ast.Param)

    def test_edge_over_subquery(self):
        q = parse_query(
            "SELECT * FROM vp WHERE x REACHES y "
            "OVER (SELECT * FROM e WHERE w > 0) f EDGE (s, d)"
        )
        assert isinstance(q.where.edge, ast.DerivedTableRef)
        assert q.where.binding == "f"

    def test_conjunction_with_other_predicates(self):
        q = parse_query(
            "SELECT * FROM vp WHERE vp.id = 1 AND x REACHES y OVER e EDGE (s, d)"
        )
        assert q.where.op == "and"
        assert isinstance(q.where.right, ast.Reaches)

    def test_expressions_as_endpoints(self):
        q = parse_query("SELECT * FROM vp WHERE x + 1 REACHES y * 2 OVER e EDGE (s, d)")
        assert isinstance(q.where.source[0], ast.Binary)

    def test_missing_edge_clause_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM vp WHERE x REACHES y OVER e")

    def test_missing_over_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM vp WHERE x REACHES y EDGE (s, d)")

    def test_edge_needs_two_columns(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM vp WHERE x REACHES y OVER e EDGE (s)")


class TestCheapestSum:
    def test_unweighted(self):
        q = parse_query("SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)")
        cheapest = q.items[0].expr
        assert isinstance(cheapest, ast.CheapestSum)
        assert cheapest.binding is None
        assert cheapest.weight == ast.Literal(1)

    def test_with_binding(self):
        q = parse_query(
            "SELECT CHEAPEST SUM(e: w) WHERE ? REACHES ? OVER t e EDGE (s, d)"
        )
        assert q.items[0].expr.binding == "e"

    def test_arbitrary_weight_expression(self):
        q = parse_query(
            "SELECT CHEAPEST SUM(e: CAST(w * 2 AS int)) "
            "WHERE ? REACHES ? OVER t e EDGE (s, d)"
        )
        assert isinstance(q.items[0].expr.weight, ast.Cast)

    def test_single_alias(self):
        q = parse_query(
            "SELECT CHEAPEST SUM(1) AS cost WHERE ? REACHES ? OVER e EDGE (s, d)"
        )
        assert q.items[0].alias == "cost"

    def test_multi_alias_cost_path(self):
        q = parse_query(
            "SELECT CHEAPEST SUM(1) AS (cost, path) "
            "WHERE ? REACHES ? OVER e EDGE (s, d)"
        )
        assert q.items[0].alias_list == ("cost", "path")

    def test_cheapest_requires_sum_keyword(self):
        with pytest.raises(ParseError):
            parse_query("SELECT CHEAPEST(1) WHERE ? REACHES ? OVER e EDGE (s, d)")

    def test_plain_sum_unaffected(self):
        q = parse_query("SELECT SUM(x) FROM t")
        assert q.items[0].expr == ast.FuncCall("sum", (ast.ColumnRef(None, "x"),), False)


class TestUnnest:
    def test_comma_lateral_form(self):
        q = parse_query("SELECT * FROM t, UNNEST(t.path) AS r")
        unnest = q.from_refs[1]
        assert isinstance(unnest, ast.UnnestRef)
        assert unnest.alias == "r" and not unnest.with_ordinality

    def test_with_ordinality(self):
        q = parse_query("SELECT * FROM t, UNNEST(t.path) WITH ORDINALITY AS r")
        assert q.from_refs[1].with_ordinality

    def test_alias_without_as(self):
        q = parse_query("SELECT * FROM t, UNNEST(t.path) r")
        assert q.from_refs[1].alias == "r"

    def test_left_join_unnest(self):
        q = parse_query("SELECT * FROM t LEFT JOIN UNNEST(t.path) AS r ON TRUE")
        join = q.from_refs[0]
        assert isinstance(join, ast.JoinRef) and join.kind == "left"
        assert isinstance(join.right, ast.UnnestRef)

    def test_lateral_keyword_tolerated(self):
        q = parse_query("SELECT * FROM t, LATERAL UNNEST(t.path) AS r")
        assert isinstance(q.from_refs[1], ast.UnnestRef)


class TestPaperQueries:
    """The verbatim SQL snippets from the paper parse."""

    def test_section2_filter_form(self):
        parse_query(
            "SELECT VP.* FROM VertexProperties VP "
            "WHERE VP.X REACHES VP.Y OVER E EDGE (S, D)"
        )

    def test_section2_join_form(self):
        parse_query(
            "SELECT VP1.*, VP2.* FROM VertexProp VP1, VertexProp VP2 "
            "WHERE VP1.X REACHES VP2.Y OVER E EDGE (S, D)"
        )

    def test_section2_cheapest_form(self):
        parse_query(
            "SELECT VP1.*, VP2.*, CHEAPEST SUM(e: 1) AS cost "
            "FROM VertexProp VP1, VertexProp VP2 "
            "WHERE VP1.X REACHES VP2.Y OVER E e EDGE (S, D)"
        )

    def test_section2_unnest_block(self):
        parse_query(
            """
            SELECT T.X, T.Y, T.cost, R.S, R.D
            FROM (
                SELECT VP1.*, VP2.*, CHEAPEST SUM(e: 1) AS (cost, path)
                FROM VertexProp VP1, VertexProp VP2
                WHERE VP1.X REACHES VP2.Y OVER E e EDGE (S, D)
            ) T, UNNEST(T.path) AS R
            """
        )

    def test_appendix_a1(self):
        parse_query(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst);"
        )

    def test_appendix_a3(self):
        parse_query(
            """
            WITH friends1 AS (
                SELECT * FROM friends WHERE creationDate < '2011-01-01'
            )
            SELECT firstName || ' ' || lastName AS person
            FROM persons
            WHERE ? REACHES id OVER friends1 EDGE (person1, person2)
            """
        )

    def test_appendix_a4(self):
        parse_query(
            """
            WITH friends1 AS (
                SELECT * FROM friends WHERE creationDate < '2011-01-01'
            )
            SELECT firstName || ' ' || lastName AS person,
                   CHEAPEST SUM(f: CAST(weight * 2 AS int)) AS (cost, path)
            FROM persons
            WHERE ? REACHES id OVER friends1 f EDGE (person1, person2)
            """
        )
