"""ASCII chart rendering for the figure reproductions."""

from repro.harness import ascii_chart, fig1a_chart, fig1b_chart


class TestAsciiChart:
    def test_empty_series(self):
        assert ascii_chart({}) == "(no data)"

    def test_single_series_renders_markers(self):
        text = ascii_chart({"s": [(1, 1.0), (10, 10.0), (100, 100.0)]})
        assert text.count("o") >= 3

    def test_two_series_get_distinct_markers(self):
        text = ascii_chart(
            {"a": [(1, 1.0), (10, 2.0)], "b": [(1, 3.0), (10, 4.0)]}
        )
        assert "o = a" in text and "x = b" in text

    def test_axis_ranges_shown(self):
        text = ascii_chart({"s": [(1, 0.5), (100, 50.0)]}, x_label="sf")
        assert "sf (log scale, 1 .. 100)" in text
        assert "0.5 .. 50" in text

    def test_monotone_series_slopes_up(self):
        # larger y must land on an earlier (higher) grid line
        text = ascii_chart({"s": [(1, 1.0), (100, 100.0)]}, height=10, width=20)
        rows = [line[1:] for line in text.splitlines() if line.startswith("|")]
        first_marker_row = next(i for i, r in enumerate(rows) if "o" in r)
        last_marker_row = max(i for i, r in enumerate(rows) if "o" in r)
        assert rows[first_marker_row].index("o") > rows[last_marker_row].index("o")

    def test_title_and_dimensions(self):
        text = ascii_chart({"s": [(1, 1.0)]}, title="T", width=30, height=5)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert sum(1 for l in lines if l.startswith("|")) == 5

    def test_zero_values_tolerated(self):
        text = ascii_chart({"s": [(1, 0.0), (2, 1.0)]})
        assert "log scale" in text


class TestFigureCharts:
    def test_fig1a_chart_shape(self):
        rows = [
            {"scale_factor": 1, "query": "Q13", "avg_latency_s": 0.001},
            {"scale_factor": 3, "query": "Q13", "avg_latency_s": 0.003},
            {"scale_factor": 1, "query": "Q14", "avg_latency_s": 0.002},
            {"scale_factor": 3, "query": "Q14", "avg_latency_s": 0.006},
        ]
        text = fig1a_chart(rows)
        assert "Figure 1a" in text and "Q13" in text and "Q14" in text

    def test_fig1b_chart_shape(self):
        rows = [
            {"scale_factor": 1, "batch_size": 1, "avg_latency_per_pair_s": 0.01},
            {"scale_factor": 1, "batch_size": 8, "avg_latency_per_pair_s": 0.002},
        ]
        text = fig1b_chart(rows)
        assert "Figure 1b" in text and "SF 1" in text
