"""Crash torture: kill the engine at random crashpoints, recover, and
assert the acknowledged-commit prefix against a shadow oracle.

Each trial runs :mod:`tests.crash_workload` in a subprocess with
``REPRO_CRASHPOINT`` armed at a random point/occurrence, then recovers
the directory and checks the fundamental durability contract:

* **no lost acked commit** — every op fsync-logged to ``acks.log``
  before the kill is present in the recovered state;
* **no resurrected unacked write** — at most the *single* op that was
  in flight at the kill may additionally appear (its WAL record can
  survive in the OS page cache across ``os._exit``); anything else is
  corruption.  A surviving in-flight op is promoted into the ack log so
  subsequent trials over the same directory keep composing.

Trials accumulate state in one directory — recover, run more DML,
crash again — including periodic ``save()`` checkpoints, so rotation,
pruning and image+log recovery all get exercised under fire.

The tier-1 run keeps a handful of trials; the full matrix (default 200,
``REPRO_TORTURE_TRIALS`` to override) is ``stress``-marked for the CI
fault-injection job.
"""

import json
import os
import random
import subprocess
import sys

import pytest

from repro import Database
from repro.faults import ENV_VAR, FAULT_EXIT_CODE

from tests.crash_workload import apply_op

WORKLOAD = os.path.join(os.path.dirname(__file__), "crash_workload.py")
SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

#: The crashpoint pool; (point, action) pairs are sampled per trial and
#: armed on a random occurrence so kills land everywhere in the op
#: stream — mid-append, between fsync and ack, inside checkpoint swaps.
CRASHPOINTS = [
    ("wal.append.before", "exit"),
    ("wal.append.write", "exit"),
    ("wal.append.write", "torn"),
    ("wal.append.after", "exit"),
    ("wal.sync.before", "exit"),
    ("wal.sync.after", "exit"),
    ("save.image.before", "exit"),
    ("save.swap.before", "exit"),
    ("save.swap.mid", "exit"),
    ("save.swap.after", "exit"),
]


def read_ops(path):
    """Complete JSON lines only: the log being appended at the kill may
    itself end mid-line."""
    if not os.path.exists(path):
        return []
    ops = []
    with open(path) as handle:
        for line in handle:
            if not line.endswith("\n"):
                break
            ops.append(json.loads(line))
    return ops


def dump(db):
    out = {}
    for name in sorted(db.catalog.table_names()):
        result = db.execute(f"SELECT * FROM {name}")
        out[name] = (result.column_names, sorted(result.rows(), key=repr))
    return out


def oracle_state(acked):
    oracle = Database()
    for op in acked:
        apply_op(oracle, op)
    state = dump(oracle)
    oracle.close()
    return state


def run_trial(workdir, rng, trial):
    target = os.path.join(workdir, "db")
    intents_path = os.path.join(workdir, "intents.log")
    acks_path = os.path.join(workdir, "acks.log")
    point, action = rng.choice(CRASHPOINTS)
    spec = f"{point}:{action}:{rng.randint(1, 14)}"
    seed = rng.randint(0, 10**9)
    durability = rng.choice(["commit", "batch"])
    env = dict(
        os.environ,
        PYTHONPATH=SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
        **{ENV_VAR: spec},
    )
    proc = subprocess.run(
        [
            sys.executable,
            WORKLOAD,
            target,
            intents_path,
            acks_path,
            str(seed),
            "24",
            durability,
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )
    context = (
        f"trial {trial}: spec={spec} seed={seed} durability={durability}\n"
        f"stderr: {proc.stderr[-2000:]}"
    )
    # 86 = killed at the armed crashpoint; 0 = the workload finished
    # before reaching the armed occurrence (both are valid trials)
    assert proc.returncode in (0, FAULT_EXIT_CODE), context

    acked = read_ops(acks_path)
    intents = read_ops(intents_path)
    recovered = Database.open(target, durability="off")
    state = dump(recovered)
    recovered.close()

    if state == oracle_state(acked):
        return proc.returncode
    # the single in-flight op's record may have survived the kill
    # (os._exit leaves the page cache intact) even though the child
    # died before acknowledging it
    acked_ids = {op["id"] for op in acked}
    candidate = (
        intents[-1]
        if intents and intents[-1]["id"] not in acked_ids
        else None
    )
    if candidate is not None and state == oracle_state(acked + [candidate]):
        # promote: it *is* in the durable state, so later trials (and
        # their oracles) must count it
        with open(acks_path, "a") as handle:
            handle.write(json.dumps(candidate, separators=(",", ":")) + "\n")
        return proc.returncode
    raise AssertionError(
        f"recovered state matches neither acks nor acks+in-flight\n{context}"
    )


def torture(tmp_path, trials, seed):
    rng = random.Random(seed)
    crashed = 0
    workdir = str(tmp_path)
    for trial in range(trials):
        crashed += run_trial(workdir, rng, trial) == FAULT_EXIT_CODE
    # the matrix must actually kill things, not run to completion
    assert crashed >= trials // 4, f"only {crashed}/{trials} trials crashed"


class TestCrashTorture:
    def test_smoke(self, tmp_path):
        """A handful of kills on every tier-1 run."""
        torture(tmp_path, trials=int(os.environ.get("REPRO_TORTURE_SMOKE", "6")), seed=1234)

    @pytest.mark.stress
    def test_full_matrix(self, tmp_path):
        """The acceptance matrix: hundreds of randomized kill points
        over one accumulating directory."""
        torture(
            tmp_path,
            trials=int(os.environ.get("REPRO_TORTURE_TRIALS", "200")),
            seed=987,
        )

    def test_clean_run_without_crashpoint(self, tmp_path):
        """The workload itself is sound: no armed point, no crash, the
        final state equals the full oracle."""
        rng = random.Random(42)
        env = dict(
            os.environ,
            PYTHONPATH=SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
        )
        env.pop(ENV_VAR, None)
        target = str(tmp_path / "db")
        acks = str(tmp_path / "acks.log")
        proc = subprocess.run(
            [
                sys.executable,
                WORKLOAD,
                target,
                str(tmp_path / "intents.log"),
                acks,
                "7",
                "30",
                "commit",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        recovered = Database.open(target, durability="off")
        assert dump(recovered) == oracle_state(read_ops(acks))
        recovered.close()
