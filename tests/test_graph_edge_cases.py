"""Graph operator edge cases: degenerate graphs, duplicate pairs,
empty inputs, guards — the unhappy paths of the §3.1 code generation."""

import pytest

from repro import Database
from repro.errors import GraphRuntimeError


@pytest.fixture
def db():
    return Database()


class TestDegenerateGraphs:
    def test_empty_edge_table(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        assert db.execute(
            "SELECT 1 WHERE 1 REACHES 2 OVER e EDGE (s, d)"
        ).rows() == []

    def test_empty_edge_table_with_cheapest(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        assert db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 2 OVER e EDGE (s, d)"
        ).rows() == []

    def test_single_self_loop(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (7, 7)")
        assert db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 7 REACHES 7 OVER e EDGE (s, d)"
        ).scalar() == 0  # empty path beats the loop

    def test_parallel_edges_pick_cheapest(self, db):
        db.execute("CREATE TABLE e (s INT, d INT, w INT)")
        db.execute("INSERT INTO e VALUES (1, 2, 9), (1, 2, 3), (1, 2, 5)")
        rows = db.execute(
            "SELECT CHEAPEST SUM(k: w) AS (c, p) "
            "WHERE 1 REACHES 2 OVER e k EDGE (s, d)"
        ).rows()
        cost, path = rows[0]
        assert cost == 3
        assert path.to_rows() == [(1, 2, 3)]

    def test_cycle_terminates(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2), (2, 3), (3, 1)")
        assert db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 3 OVER e EDGE (s, d)"
        ).scalar() == 2

    def test_disconnected_components(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2), (10, 20)")
        assert db.execute(
            "SELECT 1 WHERE 1 REACHES 20 OVER e EDGE (s, d)"
        ).rows() == []

    def test_varchar_vertex_keys(self, db):
        db.execute("CREATE TABLE e (s VARCHAR, d VARCHAR)")
        db.execute("INSERT INTO e VALUES ('a', 'b'), ('b', 'c')")
        assert db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 'a' REACHES 'c' OVER e EDGE (s, d)"
        ).scalar() == 2

    def test_date_vertex_keys(self, db):
        # any comparable type works as a key: V is derived from S ∪ D
        db.execute("CREATE TABLE e (s DATE, d DATE)")
        db.execute("INSERT INTO e VALUES ('2020-01-01', '2020-06-01')")
        rows = db.execute(
            "SELECT count(*) FROM e WHERE e.s REACHES e.d OVER e EDGE (s, d)"
        ).rows()
        assert rows == [(1,)]


class TestInputShapes:
    def test_empty_input_relation(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2)")
        db.execute("CREATE TABLE vp (x INT)")
        assert db.execute(
            "SELECT x FROM vp WHERE x REACHES 2 OVER e EDGE (s, d)"
        ).rows() == []

    def test_duplicate_pairs_each_returned(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2)")
        rows = db.execute(
            "SELECT p.src, CHEAPEST SUM(1) "
            "FROM (VALUES (1, 2), (1, 2), (1, 2)) p (src, dst) "
            "WHERE p.src REACHES p.dst OVER e EDGE (s, d)"
        ).rows()
        assert rows == [(1, 1)] * 3

    def test_many_sources_share_traversals(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2), (2, 3), (3, 4)")
        rows = db.execute(
            "SELECT p.dst, CHEAPEST SUM(1) "
            "FROM (VALUES (1, 2), (1, 3), (1, 4)) p (src, dst) "
            "WHERE p.src REACHES p.dst OVER e EDGE (s, d) ORDER BY 1"
        ).rows()
        assert rows == [(2, 1), (3, 2), (4, 3)]

    def test_graph_join_empty_sides(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2)")
        db.execute("CREATE TABLE a (x INT)")
        db.execute("CREATE TABLE b (x INT)")
        db.execute("INSERT INTO a VALUES (1)")
        assert db.execute(
            "SELECT * FROM a, b WHERE a.x REACHES b.x OVER e EDGE (s, d)"
        ).rows() == []

    def test_graph_join_dedups_endpoint_values(self, db):
        # 100 identical left values: one traversal, 100 output rows
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2)")
        db.execute("CREATE TABLE a (x INT)")
        db.table("a").insert_rows([(1,)] * 100)
        db.execute("CREATE TABLE b (x INT)")
        db.execute("INSERT INTO b VALUES (2)")
        rows = db.execute(
            "SELECT count(*) FROM a, b WHERE a.x REACHES b.x OVER e EDGE (s, d)"
        ).rows()
        assert rows == [(100,)]


class TestWeightValidation:
    def test_null_weight_rejected(self, db):
        db.execute("CREATE TABLE e (s INT, d INT, w INT)")
        db.execute("INSERT INTO e VALUES (1, 2, NULL)")
        with pytest.raises(GraphRuntimeError, match="NULL"):
            db.execute(
                "SELECT CHEAPEST SUM(k: w) WHERE 1 REACHES 2 OVER e k EDGE (s, d)"
            )

    def test_negative_weight_rejected(self, db):
        db.execute("CREATE TABLE e (s INT, d INT, w INT)")
        db.execute("INSERT INTO e VALUES (1, 2, -1)")
        with pytest.raises(GraphRuntimeError, match="strictly greater"):
            db.execute(
                "SELECT CHEAPEST SUM(k: w) WHERE 1 REACHES 2 OVER e k EDGE (s, d)"
            )

    def test_weight_on_null_endpoint_edge_is_ignored(self, db):
        # edges with NULL endpoints are dropped before weight validation
        db.execute("CREATE TABLE e (s INT, d INT, w INT)")
        db.execute("INSERT INTO e VALUES (1, 2, 5), (NULL, 3, -7)")
        assert db.execute(
            "SELECT CHEAPEST SUM(k: w) WHERE 1 REACHES 2 OVER e k EDGE (s, d)"
        ).scalar() == 5

    def test_float_weights_cost_is_double(self, db):
        db.execute("CREATE TABLE e (s INT, d INT, w DOUBLE)")
        db.execute("INSERT INTO e VALUES (1, 2, 0.25), (2, 3, 0.5)")
        cost = db.execute(
            "SELECT CHEAPEST SUM(k: w) WHERE 1 REACHES 3 OVER e k EDGE (s, d)"
        ).scalar()
        assert cost == pytest.approx(0.75)


class TestEdgeExpressionForms:
    def test_edge_from_cte(self, db):
        db.execute("CREATE TABLE e (s INT, d INT, kind VARCHAR)")
        db.execute("INSERT INTO e VALUES (1, 2, 'a'), (2, 3, 'b')")
        assert db.execute(
            "WITH ea AS (SELECT * FROM e WHERE kind = 'a') "
            "SELECT 1 WHERE 1 REACHES 3 OVER ea EDGE (s, d)"
        ).rows() == []

    def test_edge_from_values(self, db):
        assert db.execute(
            "SELECT CHEAPEST SUM(k: 1) WHERE 1 REACHES 3 "
            "OVER (SELECT * FROM (VALUES (1, 2), (2, 3)) v (s, d)) k EDGE (s, d)"
        ).scalar() == 2

    def test_edge_from_union(self, db):
        db.execute("CREATE TABLE e1 (s INT, d INT)")
        db.execute("CREATE TABLE e2 (s INT, d INT)")
        db.execute("INSERT INTO e1 VALUES (1, 2)")
        db.execute("INSERT INTO e2 VALUES (2, 3)")
        assert db.execute(
            "SELECT CHEAPEST SUM(k: 1) WHERE 1 REACHES 3 "
            "OVER (SELECT * FROM e1 UNION ALL SELECT * FROM e2) k EDGE (s, d)"
        ).scalar() == 2

    def test_undirected_graph_via_doubling(self, db):
        # the paper's trick: undirected = both directions inserted
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2), (2, 1)")
        assert db.execute(
            "SELECT 1 WHERE 2 REACHES 1 OVER e EDGE (s, d)"
        ).rows() == [(1,)]

    def test_computed_weight_from_edge_columns(self, db):
        db.execute("CREATE TABLE e (s INT, d INT, base INT, toll INT)")
        db.execute("INSERT INTO e VALUES (1, 2, 3, 4), (1, 2, 10, 0)")
        assert db.execute(
            "SELECT CHEAPEST SUM(k: base + toll) "
            "WHERE 1 REACHES 2 OVER e k EDGE (s, d)"
        ).scalar() == 7
