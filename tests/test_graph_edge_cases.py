"""Graph operator edge cases: degenerate graphs, duplicate pairs,
empty inputs, guards — the unhappy paths of the §3.1 code generation."""

import pytest

from repro import Database
from repro.errors import GraphRuntimeError


@pytest.fixture
def db():
    return Database()


class TestDegenerateGraphs:
    def test_empty_edge_table(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        assert db.execute(
            "SELECT 1 WHERE 1 REACHES 2 OVER e EDGE (s, d)"
        ).rows() == []

    def test_empty_edge_table_with_cheapest(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        assert db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 2 OVER e EDGE (s, d)"
        ).rows() == []

    def test_single_self_loop(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (7, 7)")
        assert db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 7 REACHES 7 OVER e EDGE (s, d)"
        ).scalar() == 0  # empty path beats the loop

    def test_parallel_edges_pick_cheapest(self, db):
        db.execute("CREATE TABLE e (s INT, d INT, w INT)")
        db.execute("INSERT INTO e VALUES (1, 2, 9), (1, 2, 3), (1, 2, 5)")
        rows = db.execute(
            "SELECT CHEAPEST SUM(k: w) AS (c, p) "
            "WHERE 1 REACHES 2 OVER e k EDGE (s, d)"
        ).rows()
        cost, path = rows[0]
        assert cost == 3
        assert path.to_rows() == [(1, 2, 3)]

    def test_cycle_terminates(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2), (2, 3), (3, 1)")
        assert db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 3 OVER e EDGE (s, d)"
        ).scalar() == 2

    def test_disconnected_components(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2), (10, 20)")
        assert db.execute(
            "SELECT 1 WHERE 1 REACHES 20 OVER e EDGE (s, d)"
        ).rows() == []

    def test_varchar_vertex_keys(self, db):
        db.execute("CREATE TABLE e (s VARCHAR, d VARCHAR)")
        db.execute("INSERT INTO e VALUES ('a', 'b'), ('b', 'c')")
        assert db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 'a' REACHES 'c' OVER e EDGE (s, d)"
        ).scalar() == 2

    def test_date_vertex_keys(self, db):
        # any comparable type works as a key: V is derived from S ∪ D
        db.execute("CREATE TABLE e (s DATE, d DATE)")
        db.execute("INSERT INTO e VALUES ('2020-01-01', '2020-06-01')")
        rows = db.execute(
            "SELECT count(*) FROM e WHERE e.s REACHES e.d OVER e EDGE (s, d)"
        ).rows()
        assert rows == [(1,)]


class TestInputShapes:
    def test_empty_input_relation(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2)")
        db.execute("CREATE TABLE vp (x INT)")
        assert db.execute(
            "SELECT x FROM vp WHERE x REACHES 2 OVER e EDGE (s, d)"
        ).rows() == []

    def test_duplicate_pairs_each_returned(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2)")
        rows = db.execute(
            "SELECT p.src, CHEAPEST SUM(1) "
            "FROM (VALUES (1, 2), (1, 2), (1, 2)) p (src, dst) "
            "WHERE p.src REACHES p.dst OVER e EDGE (s, d)"
        ).rows()
        assert rows == [(1, 1)] * 3

    def test_many_sources_share_traversals(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2), (2, 3), (3, 4)")
        rows = db.execute(
            "SELECT p.dst, CHEAPEST SUM(1) "
            "FROM (VALUES (1, 2), (1, 3), (1, 4)) p (src, dst) "
            "WHERE p.src REACHES p.dst OVER e EDGE (s, d) ORDER BY 1"
        ).rows()
        assert rows == [(2, 1), (3, 2), (4, 3)]

    def test_graph_join_empty_sides(self, db):
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2)")
        db.execute("CREATE TABLE a (x INT)")
        db.execute("CREATE TABLE b (x INT)")
        db.execute("INSERT INTO a VALUES (1)")
        assert db.execute(
            "SELECT * FROM a, b WHERE a.x REACHES b.x OVER e EDGE (s, d)"
        ).rows() == []

    def test_graph_join_dedups_endpoint_values(self, db):
        # 100 identical left values: one traversal, 100 output rows
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2)")
        db.execute("CREATE TABLE a (x INT)")
        db.table("a").insert_rows([(1,)] * 100)
        db.execute("CREATE TABLE b (x INT)")
        db.execute("INSERT INTO b VALUES (2)")
        rows = db.execute(
            "SELECT count(*) FROM a, b WHERE a.x REACHES b.x OVER e EDGE (s, d)"
        ).rows()
        assert rows == [(100,)]


class TestWeightValidation:
    def test_null_weight_rejected(self, db):
        db.execute("CREATE TABLE e (s INT, d INT, w INT)")
        db.execute("INSERT INTO e VALUES (1, 2, NULL)")
        with pytest.raises(GraphRuntimeError, match="NULL"):
            db.execute(
                "SELECT CHEAPEST SUM(k: w) WHERE 1 REACHES 2 OVER e k EDGE (s, d)"
            )

    def test_negative_weight_rejected(self, db):
        db.execute("CREATE TABLE e (s INT, d INT, w INT)")
        db.execute("INSERT INTO e VALUES (1, 2, -1)")
        with pytest.raises(GraphRuntimeError, match="strictly greater"):
            db.execute(
                "SELECT CHEAPEST SUM(k: w) WHERE 1 REACHES 2 OVER e k EDGE (s, d)"
            )

    def test_weight_on_null_endpoint_edge_is_ignored(self, db):
        # edges with NULL endpoints are dropped before weight validation
        db.execute("CREATE TABLE e (s INT, d INT, w INT)")
        db.execute("INSERT INTO e VALUES (1, 2, 5), (NULL, 3, -7)")
        assert db.execute(
            "SELECT CHEAPEST SUM(k: w) WHERE 1 REACHES 2 OVER e k EDGE (s, d)"
        ).scalar() == 5

    def test_float_weights_cost_is_double(self, db):
        db.execute("CREATE TABLE e (s INT, d INT, w DOUBLE)")
        db.execute("INSERT INTO e VALUES (1, 2, 0.25), (2, 3, 0.5)")
        cost = db.execute(
            "SELECT CHEAPEST SUM(k: w) WHERE 1 REACHES 3 OVER e k EDGE (s, d)"
        ).scalar()
        assert cost == pytest.approx(0.75)


class TestEdgeExpressionForms:
    def test_edge_from_cte(self, db):
        db.execute("CREATE TABLE e (s INT, d INT, kind VARCHAR)")
        db.execute("INSERT INTO e VALUES (1, 2, 'a'), (2, 3, 'b')")
        assert db.execute(
            "WITH ea AS (SELECT * FROM e WHERE kind = 'a') "
            "SELECT 1 WHERE 1 REACHES 3 OVER ea EDGE (s, d)"
        ).rows() == []

    def test_edge_from_values(self, db):
        assert db.execute(
            "SELECT CHEAPEST SUM(k: 1) WHERE 1 REACHES 3 "
            "OVER (SELECT * FROM (VALUES (1, 2), (2, 3)) v (s, d)) k EDGE (s, d)"
        ).scalar() == 2

    def test_edge_from_union(self, db):
        db.execute("CREATE TABLE e1 (s INT, d INT)")
        db.execute("CREATE TABLE e2 (s INT, d INT)")
        db.execute("INSERT INTO e1 VALUES (1, 2)")
        db.execute("INSERT INTO e2 VALUES (2, 3)")
        assert db.execute(
            "SELECT CHEAPEST SUM(k: 1) WHERE 1 REACHES 3 "
            "OVER (SELECT * FROM e1 UNION ALL SELECT * FROM e2) k EDGE (s, d)"
        ).scalar() == 2

    def test_undirected_graph_via_doubling(self, db):
        # the paper's trick: undirected = both directions inserted
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2), (2, 1)")
        assert db.execute(
            "SELECT 1 WHERE 2 REACHES 1 OVER e EDGE (s, d)"
        ).rows() == [(1,)]

    def test_computed_weight_from_edge_columns(self, db):
        db.execute("CREATE TABLE e (s INT, d INT, base INT, toll INT)")
        db.execute("INSERT INTO e VALUES (1, 2, 3, 4), (1, 2, 10, 0)")
        assert db.execute(
            "SELECT CHEAPEST SUM(k: base + toll) "
            "WHERE 1 REACHES 2 OVER e k EDGE (s, d)"
        ).scalar() == 7


@pytest.fixture(params=["uncached", "indexed"])
def indexed_db(request):
    """An (s, d, w) edge table with and without a covering graph index,
    so every degenerate case exercises both the ad-hoc CSR build and the
    graph-index cache path."""
    db = Database()
    db.execute("CREATE TABLE e (s INT, d INT, w INT)")
    if request.param == "indexed":
        db.execute("CREATE GRAPH INDEX gi ON e EDGE (s, d)")
    db.indexed = request.param == "indexed"
    return db


class TestCachedAndUncachedEdgeCases:
    """The satellite's degenerate-graph matrix: each case runs with the
    graph-index cache engaged and bypassed (the two code paths of
    ``_prepare_libraries``)."""

    def _assert_index_used(self, db):
        if db.indexed:
            # the query went through the manager: either a hit, or (after
            # DML invalidated the entry) a miss that rebuilt the library
            stats = db.graph_indices.stats()
            assert stats["builds"] >= 1
            assert stats["hits"] + stats["misses"] >= 2  # eager build + query

    def test_empty_edge_table(self, indexed_db):
        db = indexed_db
        assert db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 2 OVER e EDGE (s, d)"
        ).rows() == []
        self._assert_index_used(db)

    def test_self_loop_cost_zero_beats_loop_edge(self, indexed_db):
        db = indexed_db
        db.execute("INSERT INTO e VALUES (7, 7, 5)")
        assert db.execute(
            "SELECT CHEAPEST SUM(k: w) WHERE 7 REACHES 7 OVER e k EDGE (s, d)"
        ).scalar() == 0
        self._assert_index_used(db)

    def test_self_loop_never_appears_in_other_paths(self, indexed_db):
        db = indexed_db
        db.execute("INSERT INTO e VALUES (1, 1, 1), (1, 2, 3)")
        rows = db.execute(
            "SELECT CHEAPEST SUM(k: w) AS (c, p) "
            "WHERE 1 REACHES 2 OVER e k EDGE (s, d)"
        ).rows()
        cost, path = rows[0]
        assert cost == 3
        assert path.to_rows() == [(1, 2, 3)]

    def test_duplicate_edges_keep_cheapest(self, indexed_db):
        db = indexed_db
        db.execute("INSERT INTO e VALUES (1, 2, 9), (1, 2, 2), (1, 2, 9)")
        assert db.execute(
            "SELECT CHEAPEST SUM(k: w) WHERE 1 REACHES 2 OVER e k EDGE (s, d)"
        ).scalar() == 2
        self._assert_index_used(db)

    def test_duplicate_edges_hop_count_one(self, indexed_db):
        db = indexed_db
        db.execute("INSERT INTO e VALUES (1, 2, 9), (1, 2, 2)")
        assert db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 2 OVER e EDGE (s, d)"
        ).scalar() == 1

    def test_all_pairs_unreachable(self, indexed_db):
        db = indexed_db
        # two disjoint components; every cross-component pair fails
        db.execute("INSERT INTO e VALUES (1, 2, 1), (10, 20, 1)")
        rows = db.execute(
            "SELECT p.src, p.dst FROM "
            "(VALUES (1, 10), (1, 20), (2, 10), (2, 20)) p (src, dst) "
            "WHERE p.src REACHES p.dst OVER e EDGE (s, d)"
        ).rows()
        assert rows == []
        self._assert_index_used(db)

    def test_zero_weight_rejected(self, indexed_db):
        db = indexed_db
        db.execute("INSERT INTO e VALUES (1, 2, 0)")
        with pytest.raises(GraphRuntimeError, match="strictly greater"):
            db.execute(
                "SELECT CHEAPEST SUM(k: w) WHERE 1 REACHES 2 OVER e k EDGE (s, d)"
            )

    def test_negative_weight_rejected(self, indexed_db):
        db = indexed_db
        db.execute("INSERT INTO e VALUES (1, 2, -3)")
        with pytest.raises(GraphRuntimeError, match="strictly greater"):
            db.execute(
                "SELECT CHEAPEST SUM(k: w) WHERE 1 REACHES 2 OVER e k EDGE (s, d)"
            )

    def test_reachability_unaffected_by_bad_weights(self, indexed_db):
        db = indexed_db
        # weight validation only runs for CHEAPEST SUM over that weight;
        # pure reachability must still work
        db.execute("INSERT INTO e VALUES (1, 2, -3)")
        assert db.execute(
            "SELECT 1 WHERE 1 REACHES 2 OVER e EDGE (s, d)"
        ).rows() == [(1,)]

    def test_insert_after_index_build_is_visible(self, indexed_db):
        db = indexed_db
        db.execute("INSERT INTO e VALUES (1, 2, 1)")
        assert db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 3 OVER e EDGE (s, d)"
        ).rows() == []
        db.execute("INSERT INTO e VALUES (2, 3, 1)")
        assert db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 3 OVER e EDGE (s, d)"
        ).scalar() == 2
