"""Property-based tests (hypothesis) on the core data structures, with
networkx as the reference implementation for graph algorithms."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.graph import (
    GraphLibrary,
    RadixQueue,
    VertexDomain,
    bfs,
    build_csr,
    dijkstra,
    reconstruct_path,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
edges_strategy = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)),
    min_size=1,
    max_size=60,
)

weighted_edges_strategy = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12), st.integers(1, 30)),
    min_size=1,
    max_size=50,
)


def _csr_from(edges, weights=None):
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    n = int(max(src.max(), dst.max())) + 1
    w = np.array(weights, dtype=np.int64) if weights is not None else None
    return build_csr(src, dst, n, w), n


def _nx_digraph(edges, weights=None):
    graph = nx.MultiDiGraph()
    for i, (a, b) in enumerate(edges):
        graph.add_edge(a, b, weight=weights[i] if weights else 1)
    return graph


class TestCsrProperties:
    @given(edges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_csr_preserves_adjacency_multiset(self, edges):
        graph, n = _csr_from(edges)
        rebuilt = sorted(zip(graph.src.tolist(), graph.dst.tolist()))
        assert rebuilt == sorted(edges)

    @given(edges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_indptr_is_monotone_prefix_sum(self, edges):
        graph, n = _csr_from(edges)
        assert graph.indptr[0] == 0
        assert graph.indptr[-1] == len(edges)
        assert (np.diff(graph.indptr) >= 0).all()

    @given(edges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_edge_rows_is_permutation(self, edges):
        graph, _ = _csr_from(edges)
        assert sorted(graph.edge_rows.tolist()) == list(range(len(edges)))


class TestBfsAgainstNetworkx:
    @given(edges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_distances_match(self, edges):
        graph, n = _csr_from(edges)
        reference = _nx_digraph(edges)
        result = bfs(graph, 0)
        expected = (
            nx.single_source_shortest_path_length(reference, 0)
            if 0 in reference
            else {0: 0}
        )
        for v in range(n):
            ours = result.cost(v)
            if v == 0:
                assert ours == 0
            elif v in expected:
                assert ours == expected[v]
            else:
                assert ours is None

    @given(edges_strategy)
    @settings(max_examples=40, deadline=None)
    def test_paths_are_valid_and_shortest(self, edges):
        graph, n = _csr_from(edges)
        src = np.array([e[0] for e in edges])
        dst = np.array([e[1] for e in edges])
        result = bfs(graph, 0)
        for v in range(n):
            if result.cost(v) is None:
                continue
            path = reconstruct_path(graph, result, v)
            assert len(path) == result.cost(v)
            # path is a connected edge sequence from 0 to v
            current = 0
            for row in path:
                assert src[row] == current
                current = dst[row]
            assert current == v


class TestDijkstraAgainstNetworkx:
    @given(weighted_edges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_costs_match(self, edges):
        weights = [e[2] for e in edges]
        graph, n = _csr_from([(a, b) for a, b, _ in edges], weights)
        reference = _nx_digraph([(a, b) for a, b, _ in edges], weights)
        result = dijkstra(graph, 0)
        expected = (
            nx.single_source_dijkstra_path_length(reference, 0)
            if 0 in reference
            else {0: 0}
        )
        for v in range(n):
            ours = result.cost(v)
            if v == 0:
                assert ours == 0
            elif v in expected:
                assert ours == expected[v]
            else:
                assert ours is None

    @given(weighted_edges_strategy)
    @settings(max_examples=40, deadline=None)
    def test_radix_equals_binary(self, edges):
        weights = [e[2] for e in edges]
        graph, n = _csr_from([(a, b) for a, b, _ in edges], weights)
        a = dijkstra(graph, 0, queue="radix")
        b = dijkstra(graph, 0, queue="binary")
        assert a.dist.tolist() == b.dist.tolist()

    @given(weighted_edges_strategy)
    @settings(max_examples=40, deadline=None)
    def test_path_cost_equals_reported_cost(self, edges):
        weights = [e[2] for e in edges]
        graph, n = _csr_from([(a, b) for a, b, _ in edges], weights)
        w = np.array(weights)
        result = dijkstra(graph, 0)
        for v in range(n):
            cost = result.cost(v)
            if cost is None:
                continue
            path = reconstruct_path(graph, result, v)
            assert int(w[path].sum()) == cost


class TestRadixQueueProperties:
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=60),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_pops_sorted_under_monotone_pushes(self, increments, rng):
        queue = RadixQueue(30)
        pending = sorted(increments)
        reference: list[int] = []
        popped: list[int] = []
        last = 0
        while pending or reference:
            do_push = pending and (not reference or rng.random() < 0.5)
            if do_push:
                key = last + (pending.pop(0) % 31)
                queue.push(key, key)
                reference.append(key)
            else:
                key, _ = queue.pop_min()
                assert key == min(reference)
                reference.remove(key)
                popped.append(key)
                last = key
        assert popped == sorted(popped)


class TestDomainProperties:
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_roundtrip(self, keys):
        arr = np.array(keys, dtype=np.int64)
        domain = VertexDomain(arr, arr[::-1].copy())
        ids = domain.encode(arr)
        assert (ids >= 0).all()
        assert domain.decode(ids) == keys


class TestSqlEngineProperties:
    @given(st.lists(st.integers(-100, 100), min_size=0, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_order_by_sorts(self, values):
        db = Database()
        db.execute("CREATE TABLE v (x INT)")
        if values:
            db.table("v").insert_rows([(v,) for v in values])
        rows = db.execute("SELECT x FROM v ORDER BY x").rows()
        assert [r[0] for r in rows] == sorted(values)

    @given(st.lists(st.integers(0, 10), min_size=0, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_group_by_counts_match_python(self, values):
        db = Database()
        db.execute("CREATE TABLE v (x INT)")
        if values:
            db.table("v").insert_rows([(v,) for v in values])
        rows = db.execute("SELECT x, count(*) FROM v GROUP BY x").rows()
        from collections import Counter

        assert dict(rows) == dict(Counter(values))

    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)),
            min_size=1,
            max_size=30,
        ),
        st.integers(0, 8),
        st.integers(0, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_reaches_matches_networkx(self, edges, source, dest):
        db = Database()
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.table("e").insert_rows(edges)
        connected = (
            db.execute(
                "SELECT 1 WHERE ? REACHES ? OVER e EDGE (s, d)", (source, dest)
            ).rows()
            != []
        )
        graph = _nx_digraph(edges)
        vertices = set(graph.nodes)
        expected = (
            source in vertices
            and dest in vertices
            and nx.has_path(graph, source, dest)
        )
        assert connected == expected

    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8), st.integers(1, 9)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_cheapest_sum_matches_networkx(self, edges):
        db = Database()
        db.execute("CREATE TABLE e (s INT, d INT, w INT)")
        db.table("e").insert_rows(edges)
        graph = _nx_digraph(
            [(a, b) for a, b, _ in edges], [w for _, _, w in edges]
        )
        source = edges[0][0]
        costs = db.execute(
            "SELECT d.v, CHEAPEST SUM(e: w) FROM (SELECT DISTINCT d AS v FROM e) d "
            "WHERE ? REACHES d.v OVER e e EDGE (s, d)",
            (source,),
        ).rows()
        expected = nx.single_source_dijkstra_path_length(graph, source)
        for vertex, cost in costs:
            assert cost == expected[vertex]
