"""Morsel-driven parallel execution: dictionary merge + workers oracle.

Unit half: the deterministic parallel primitives of
:mod:`repro.exec.parallel` and the morsel paths of
:meth:`repro.storage.Column.factorize` / :mod:`repro.exec.kernels`,
forced onto tiny morsels so a handful of rows exercises real multi-morsel
merges — including the edge cases the SQL surface makes hard to pin
down: an all-NULL morsel (empty local dictionary), a single-morsel
input, and the mixed-radix dictionary-overflow densification.

Engine half: ``Database(exec_workers=1)`` is the serial kernels — the
bit-identity oracle.  Every query (the ``test_fuzz`` relational and
graph grammars, ORDER BY tie order, recursive CTEs) must produce *the
identical row list* on a many-worker database with deliberately tiny
morsels, and a shared pool must stay correct under concurrent sessions.
"""

import random
import threading

import numpy as np
import pytest

from repro import Database, ReproError
from repro.exec import kernels
from repro.exec import parallel as mp
from repro.exec.parallel import ExecPool, morsel_spans
from repro.storage import Column, DataType
from test_fuzz import random_graph_query, random_query


def tiny_context(workers: int = 2, morsel_rows: int = 4):
    """A ParallelContext that morselizes even toy inputs."""
    return ExecPool(workers, morsel_rows=morsel_rows, min_rows=0).context()


# ---------------------------------------------------------------------------
# morsels and primitives
# ---------------------------------------------------------------------------
class TestMorselPrimitives:
    def test_morsel_spans_cover_and_partition(self):
        assert morsel_spans(0, 4) == []
        assert morsel_spans(3, 4) == [(0, 3)]  # single-morsel input
        assert morsel_spans(8, 4) == [(0, 4), (4, 8)]
        assert morsel_spans(9, 4) == [(0, 4), (4, 8), (8, 9)]

    def test_parallel_stable_argsort_is_the_stable_permutation(self):
        rng = np.random.default_rng(1)
        par = tiny_context(workers=3, morsel_rows=5)
        for n in (2, 7, 16, 33, 100):
            keys = rng.integers(0, 6, size=n)
            expected = np.argsort(keys, kind="stable")
            assert mp.parallel_stable_argsort(keys, par).tolist() == expected.tolist()

    def test_counting_argsort_matches_merge_path_and_numpy(self):
        rng = np.random.default_rng(2)
        par = tiny_context(workers=3, morsel_rows=5)
        for n in (6, 13, 40, 121):
            keys = rng.integers(0, 9, size=n).astype(np.int64)
            expected = np.argsort(keys, kind="stable").tolist()
            assert (
                mp.parallel_stable_argsort(keys, par, radix=9).tolist()
                == expected
            )
            assert mp.parallel_stable_argsort(keys, par).tolist() == expected

    def test_parallel_bincount_matches_serial(self):
        par = tiny_context()
        ids = np.array([0, 2, 2, 1, 0, 2, 4, 4, 0], dtype=np.int64)
        valid = np.array([1, 1, 0, 1, 1, 1, 0, 1, 1], dtype=np.bool_)
        assert mp.parallel_bincount(ids, 5, par).tolist() == np.bincount(
            ids, minlength=5
        ).tolist()
        assert mp.parallel_bincount(ids, 5, par, valid=valid).tolist() == (
            np.bincount(ids[valid], minlength=5).tolist()
        )

    def test_parallel_first_rows_merges_morsel_minima(self):
        par = tiny_context(morsel_rows=3)
        ids = np.array([7, 2, 7, 2, 9, 2, 7, 9], dtype=np.int64)
        uniques, first = mp.parallel_first_rows(ids, par)
        assert uniques.tolist() == [2, 7, 9]
        assert first.tolist() == [1, 0, 4]  # global first occurrences

    def test_parallel_unique_inverse_matches_numpy(self):
        rng = np.random.default_rng(3)
        par = tiny_context(morsel_rows=5)
        values = rng.integers(-50, 50, size=40) * 10**12  # wide domain
        uniques, inverse = mp.parallel_unique_inverse(values, par)
        expected_u, expected_i = np.unique(values, return_inverse=True)
        assert uniques.tolist() == expected_u.tolist()
        assert inverse.tolist() == expected_i.reshape(-1).tolist()

    def test_parallel_membership_both_strategies(self):
        par = tiny_context(morsel_rows=4)
        probe = np.array([0, 5, 9, 5, 3, 0, 7, 1, 2, 9], dtype=np.int64)
        keys = np.array([5, 2, 9], dtype=np.int64)
        expected = np.isin(probe, keys).tolist()
        small = mp.parallel_membership(probe, keys, 10, True, par)
        large = mp.parallel_membership(probe, keys, 10, False, par)
        assert small.tolist() == expected
        assert large.tolist() == expected

    def test_parallel_membership_empty_key_side(self):
        par = tiny_context(morsel_rows=4)
        probe = np.arange(10, dtype=np.int64)
        out = mp.parallel_membership(
            probe, np.empty(0, dtype=np.int64), 16, False, par
        )
        assert not out.any()


# ---------------------------------------------------------------------------
# per-partition dictionary merge (Column.factorize + codify)
# ---------------------------------------------------------------------------
def assert_same_factorize(column: Column, par) -> None:
    codes_s, card_s, uniques_s = column._factorize_impl(True, None)
    codes_p, card_p, uniques_p = column._factorize_impl(True, par)
    assert codes_p.tolist() == codes_s.tolist()
    assert card_p == card_s
    if uniques_s is None or uniques_p is None:
        # the dense-span fast path skips the dictionary on both sides
        # only when both took it; a dictionary is allowed to appear on
        # one side only if the codes still agree (checked above)
        return
    assert uniques_p.tolist() == uniques_s.tolist()


class TestDictionaryMerge:
    def test_wide_integer_dictionary(self):
        rng = np.random.default_rng(11)
        par = tiny_context(workers=3, morsel_rows=4)
        data = rng.integers(-100, 100, size=37) * 10**11
        assert_same_factorize(Column(DataType.BIGINT, data), par)

    def test_dense_span_fast_path(self):
        rng = np.random.default_rng(12)
        par = tiny_context(morsel_rows=4)
        data = rng.integers(0, 9, size=41, dtype=np.int64)
        assert_same_factorize(Column(DataType.BIGINT, data), par)

    def test_floats_with_nulls_and_nans(self):
        par = tiny_context(morsel_rows=3)
        values = [1.5, None, float("nan"), -2.0, 1.5, None, float("nan"), 0.0,
                  -0.0, 3.25, None, 1.5, 7.0]
        column = Column.from_values(DataType.DOUBLE, values)
        assert_same_factorize(column, par)

    def test_all_null_morsel(self):
        # rows 4..7 form one entirely-NULL morsel: its local dictionary
        # is empty and must vanish in the merge
        par = tiny_context(morsel_rows=4)
        values = [10**12, 5, None, 10**12, None, None, None, None, 5, -3]
        column = Column.from_values(DataType.BIGINT, values)
        assert_same_factorize(column, par)

    def test_all_null_column_stays_serial_and_correct(self):
        par = tiny_context(morsel_rows=2)
        column = Column.nulls(DataType.INTEGER, 9)
        codes, cardinality, _ = column._factorize_impl(True, par)
        assert codes.tolist() == [0] * 9
        assert cardinality == 1

    def test_single_morsel_input_runs_inline(self):
        # one span: ParallelContext.map must run inline (counted serial)
        par = tiny_context(morsel_rows=100)
        data = (np.arange(20) * 10**12)[::-1].copy()
        column = Column(DataType.BIGINT, data)
        codes_p, card_p, _ = column._factorize_impl(True, par)
        codes_s, card_s, _ = column._factorize_impl(True, None)
        assert codes_p.tolist() == codes_s.tolist() and card_p == card_s

    def test_memo_returns_identical_result_and_is_per_nan_mode(self):
        column = Column.from_values(
            DataType.DOUBLE, [1.0, float("nan"), 2.0, float("nan")]
        )
        first = column.factorize(nan_distinct=True)
        again = column.factorize(nan_distinct=True)
        assert first[0] is again[0]  # memoized
        grouped = column.factorize(nan_distinct=False)
        assert grouped[1] != first[1]  # distinct cache per nan mode

    def test_codify_multi_column_matches_serial(self):
        rng = np.random.default_rng(13)
        par = tiny_context(morsel_rows=4)
        n = 33
        columns = [
            Column(DataType.BIGINT, rng.integers(0, 5, size=n, dtype=np.int64)),
            Column.from_values(
                DataType.DOUBLE,
                [rng.choice([None, 0.5, -1.5, 2.25]) for _ in range(n)],
            ),
            Column(DataType.BIGINT, rng.integers(-3, 3, size=n) * 10**12),
        ]
        serial = kernels.codify(columns, n)
        parallel = kernels.codify(columns, n, par=par)
        assert parallel.tolist() == serial.tolist()

    def test_dictionary_overflow_densification(self):
        # enough wide-dictionary key columns to overflow the int64
        # mixed-radix space: the intermediate ids must densify (via the
        # parallel per-partition unique merge) and still agree with the
        # serial kernels
        rng = np.random.default_rng(14)
        par = tiny_context(morsel_rows=16)
        n = 120
        columns = [
            Column(
                DataType.BIGINT,
                rng.integers(0, 90, size=n) * 10**10 + j,
            )
            for j in range(11)
        ]
        serial = kernels.codify(columns, n)
        parallel = kernels.codify(columns, n, par=par)
        assert parallel.tolist() == serial.tolist()
        # sanity: the scenario really exercised the densify branch
        cards = [c.factorize()[1] for c in columns]
        product = 1
        for cardinality in cards:
            product *= cardinality
        assert product > kernels._MAX_RADIX

    def test_group_ids_and_distinct_mask_match_serial(self):
        rng = random.Random(15)
        par = tiny_context(morsel_rows=4)
        for _ in range(25):
            n = rng.randrange(0, 40)
            columns = [
                Column.from_values(
                    DataType.INTEGER,
                    [rng.choice([None, *range(4)]) for _ in range(n)],
                )
                for _ in range(rng.randrange(1, 3))
            ]
            ids_s, n_s, first_s = kernels.group_ids(columns, n)
            ids_p, n_p, first_p = kernels.group_ids(columns, n, par)
            assert ids_p.tolist() == ids_s.tolist()
            assert (n_p, first_p.tolist()) == (n_s, first_s.tolist())
            mask_s = kernels.distinct_mask(columns, n)
            mask_p = kernels.distinct_mask(columns, n, par)
            assert mask_p.tolist() == mask_s.tolist()

    def test_grouped_aggregates_bitwise_equal(self):
        rng = np.random.default_rng(16)
        par = tiny_context(workers=3, morsel_rows=5)
        n = 64
        ids = rng.integers(0, 7, size=n).astype(np.int64)
        mask = rng.random(n) < 0.2
        arg = Column(DataType.DOUBLE, rng.random(n), mask.copy())
        for func in ("count_star", "count", "sum", "min", "max", "avg"):
            serial = kernels.grouped_aggregate(func, False, arg, ids, 7)
            parallel = kernels.grouped_aggregate(
                func, False, arg, ids, 7, None, par
            )
            # bit-identical, incl. float SUM/AVG (same reduceat input)
            assert serial.data.tolist() == parallel.data.tolist(), func
            assert (serial.mask is None) == (parallel.mask is None)
            if serial.mask is not None:
                assert serial.mask.tolist() == parallel.mask.tolist()

    def test_join_indices_match_serial(self):
        rng = np.random.default_rng(17)
        par = tiny_context(morsel_rows=4)
        n_left, n_right = 50, 23
        left = [
            Column(DataType.BIGINT, rng.integers(0, 9, size=n_left, dtype=np.int64)),
            Column.from_values(
                DataType.VARCHAR,
                [rng.choice([None, "a", "b", "c"]) for _ in range(n_left)],
            ),
        ]
        right = [
            Column(DataType.BIGINT, rng.integers(0, 9, size=n_right, dtype=np.int64)),
            Column.from_values(
                DataType.VARCHAR,
                [rng.choice([None, "a", "b"]) for _ in range(n_right)],
            ),
        ]
        li_s, ri_s = kernels.join_indices(left, right)
        li_p, ri_p = kernels.join_indices(left, right, par=par)
        assert li_p.tolist() == li_s.tolist()
        assert ri_p.tolist() == ri_s.tolist()
        # single-key int and double fast paths
        for caster in (
            lambda c: c,
            lambda c: c.cast(DataType.DOUBLE),
        ):
            li_s, ri_s = kernels.join_indices([caster(left[0])], [caster(right[0])])
            li_p, ri_p = kernels.join_indices(
                [caster(left[0])], [caster(right[0])], par=par
            )
            assert li_p.tolist() == li_s.tolist()
            assert ri_p.tolist() == ri_s.tolist()

    def test_setop_and_new_rows_masks_match_serial(self):
        rng = np.random.default_rng(18)
        par = tiny_context(morsel_rows=4)
        n_left, n_right = 41, 17
        left = [Column(DataType.BIGINT, rng.integers(0, 12, size=n_left, dtype=np.int64))]
        right = [Column(DataType.BIGINT, rng.integers(0, 12, size=n_right, dtype=np.int64))]
        for keep_members in (True, False):
            serial = kernels.setop_mask(
                left, n_left, right, n_right, keep_members=keep_members
            )
            parallel = kernels.setop_mask(
                left, n_left, right, n_right, keep_members=keep_members, par=par
            )
            assert parallel.tolist() == serial.tolist()
        serial = kernels.new_rows_mask(right, n_right, left, n_left)
        parallel = kernels.new_rows_mask(right, n_right, left, n_left, par)
        assert parallel.tolist() == serial.tolist()


# ---------------------------------------------------------------------------
# the argsort cache is thread-local
# ---------------------------------------------------------------------------
class TestArgsortCache:
    def test_entries_are_per_thread(self):
        cache = kernels.ArgsortCache()
        keys = np.array([2, 1, 2], dtype=np.int64)
        order = np.argsort(keys, kind="stable")
        cache.store(keys, order)
        assert cache.lookup(keys) is order
        seen_elsewhere = []
        thread = threading.Thread(
            target=lambda: seen_elsewhere.append(cache.lookup(keys))
        )
        thread.start()
        thread.join()
        assert seen_elsewhere == [None]  # other threads see their own map

    def test_identity_keyed_not_value_keyed(self):
        cache = kernels.ArgsortCache()
        keys = np.array([1, 0], dtype=np.int64)
        cache.store(keys, np.argsort(keys, kind="stable"))
        clone = keys.copy()
        assert cache.lookup(clone) is None


# ---------------------------------------------------------------------------
# engine-level oracle: exec_workers=1 vs exec_workers=N (bit-identical)
# ---------------------------------------------------------------------------
SCHEMA = """
    CREATE TABLE t1 (a INT, b VARCHAR, c DOUBLE);
    CREATE TABLE t2 (a INT, d INT);
    CREATE TABLE e (s INT, d INT, w INT);
    INSERT INTO t1 VALUES
        (1, 'x', 0.5), (2, 'y', 1.5), (3, NULL, 2.5), (NULL, 'z', NULL),
        (2, 'y', 1.5), (1, 'a', NULL), (NULL, NULL, 0.5);
    INSERT INTO t2 VALUES (1, 10), (2, 20), (5, 50), (2, 21), (NULL, 0);
    INSERT INTO e VALUES (1, 2, 1), (2, 3, 2), (3, 1, 3), (2, 5, 1);
"""


@pytest.fixture(scope="module")
def engines():
    serial = Database(exec_workers=1)
    parallel = Database(exec_workers=3, morsel_rows=2, parallel_min_rows=0)
    serial.executescript(SCHEMA)
    parallel.executescript(SCHEMA)
    return serial, parallel


def assert_workers_identical(engines, sql, params=()):
    serial, parallel = engines
    try:
        expected = serial.execute(sql, params).rows()
        expected_error = None
    except ReproError as exc:
        expected, expected_error = None, exc
    try:
        actual = parallel.execute(sql, params).rows()
        actual_error = None
    except ReproError as exc:
        actual, actual_error = None, exc
    if expected_error is not None or actual_error is not None:
        assert (expected_error is None) == (actual_error is None), (
            f"only one worker count failed for {sql!r}: "
            f"serial={expected_error!r} parallel={actual_error!r}"
        )
        return
    # repr-compare so NaN-bearing rows still match; NO sorting — the
    # worker count must not change even the row order
    assert list(map(repr, actual)) == list(map(repr, expected)), sql


class TestWorkersEquivalence:
    def test_operator_shapes(self, engines):
        for sql in [
            "SELECT b, count(*), sum(a), min(c), max(c), avg(a) FROM t1 GROUP BY b",
            "SELECT a, b, count(*) FROM t1 GROUP BY a, b",
            "SELECT count(*), sum(c), avg(c) FROM t1",
            "SELECT DISTINCT a, b FROM t1",
            "SELECT * FROM t1 JOIN t2 ON t1.a = t2.a",
            "SELECT x.b, y.b FROM t1 x JOIN t1 y ON x.b = y.b AND x.a = y.a",
            "SELECT t1.b, t2.d FROM t1 LEFT JOIN t2 ON t1.a = t2.a",
            "SELECT a FROM t1 UNION SELECT a FROM t2",
            "SELECT a FROM t1 INTERSECT SELECT a FROM t2",
            "SELECT a FROM t1 EXCEPT SELECT a FROM t2",
            "SELECT a, b, c FROM t1 ORDER BY b, a DESC",
            "SELECT a, b, c FROM t1 ORDER BY c DESC, b, a",
        ]:
            assert_workers_identical(engines, sql)

    def test_order_by_tie_order_bit_identical(self, engines):
        # duplicated (2, 'y', 1.5) rows: the tie order must match too
        assert_workers_identical(
            engines, "SELECT a, b, c FROM t1 ORDER BY a, c"
        )
        assert_workers_identical(
            engines, "SELECT a % 2, b FROM t1 ORDER BY a % 2"
        )

    def test_recursive_ctes(self, engines):
        for sql in [
            "WITH RECURSIVE r (n) AS ("
            "SELECT s FROM e UNION SELECT d FROM e WHERE d IN (SELECT n FROM r)"
            ") SELECT n FROM r ORDER BY n",
            "WITH RECURSIVE walk (node, hops) AS ("
            "SELECT 1, 0 UNION "
            "SELECT e.d, walk.hops + 1 FROM walk JOIN e ON walk.node = e.s "
            "WHERE walk.hops < 5"
            ") SELECT node, hops FROM walk ORDER BY hops, node",
        ]:
            assert_workers_identical(engines, sql)

    def test_relational_fuzz_corpus(self, engines):
        rng = random.Random(20260731)
        for _ in range(200):
            assert_workers_identical(engines, random_query(rng))

    def test_graph_fuzz_corpus(self, engines):
        rng = random.Random(515)
        for _ in range(120):
            assert_workers_identical(engines, random_graph_query(rng))

    def test_large_synthetic_groupby_and_join(self):
        # big enough to split into many real morsels even at the default
        # morsel maths (scaled down via the knobs for test speed)
        rng = np.random.default_rng(99)
        n = 30_000
        k = rng.integers(0, 211, size=n, dtype=np.int64)
        w = rng.integers(0, 17, size=n, dtype=np.int64)
        v = rng.random(n)
        results = []
        for workers in (1, 4):
            db = Database(
                exec_workers=workers, morsel_rows=1024, parallel_min_rows=0
            )
            db.execute("CREATE TABLE f (k BIGINT, w BIGINT, v DOUBLE)")
            db.table("f").insert_columns(
                [
                    Column(DataType.BIGINT, k.copy()),
                    Column(DataType.BIGINT, w.copy()),
                    Column(DataType.DOUBLE, v.copy()),
                ]
            )
            results.append(
                (
                    db.execute(
                        "SELECT k, count(*), sum(v), min(v), max(v) "
                        "FROM f GROUP BY k ORDER BY k"
                    ).rows(),
                    db.execute(
                        "SELECT count(*) FROM f x JOIN f y "
                        "ON x.k = y.k AND x.w = y.w WHERE x.v < 0.001"
                    ).rows(),
                    db.execute("SELECT DISTINCT k, w FROM f").rows(),
                )
            )
        assert results[0] == results[1]  # bit-identical, float sums included


# ---------------------------------------------------------------------------
# shared pool under concurrent sessions
# ---------------------------------------------------------------------------
class TestSharedPoolConcurrency:
    def test_concurrent_sessions_share_the_pool(self):
        db = Database(exec_workers=2, morsel_rows=64, parallel_min_rows=0)
        db.execute("CREATE TABLE t (k BIGINT, v BIGINT)")
        rng = np.random.default_rng(5)
        k = rng.integers(0, 23, size=4000, dtype=np.int64)
        v = rng.integers(0, 1000, size=4000, dtype=np.int64)
        db.table("t").insert_columns(
            [Column(DataType.BIGINT, k), Column(DataType.BIGINT, v)]
        )
        expected = db.execute(
            "SELECT k, count(*), sum(v) FROM t GROUP BY k ORDER BY k"
        ).rows()
        errors: list = []

        def worker():
            try:
                with db.connect() as session:
                    for _ in range(10):
                        rows = session.execute(
                            "SELECT k, count(*), sum(v) FROM t "
                            "GROUP BY k ORDER BY k"
                        ).rows()
                        assert rows == expected
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


# ---------------------------------------------------------------------------
# counters, knobs, shell surface
# ---------------------------------------------------------------------------
class TestParallelStats:
    def test_parallel_stats_counts_ops_and_morsels(self):
        db = Database(exec_workers=2, morsel_rows=8, parallel_min_rows=0)
        db.execute("CREATE TABLE t (k BIGINT)")
        db.table("t").insert_columns(
            [Column(DataType.BIGINT, np.arange(100, dtype=np.int64) % 7)]
        )
        db.execute("SELECT k, count(*) FROM t GROUP BY k")
        stats = db.parallel_stats()
        assert stats["workers"] == 2
        assert stats["parallel_op_total"] >= 1
        assert stats["morsel_total"] >= 2
        assert stats["morsel_seconds_total"] >= 0.0

    def test_serial_database_never_parallelizes(self):
        db = Database(exec_workers=1)
        db.execute("CREATE TABLE t (k BIGINT)")
        db.table("t").insert_columns(
            [Column(DataType.BIGINT, np.arange(1000, dtype=np.int64) % 5)]
        )
        db.execute("SELECT k, count(*) FROM t GROUP BY k")
        stats = db.parallel_stats()
        assert stats["workers"] == 1
        assert stats["parallel_op_total"] == 0
        assert stats["morsel_total"] == 0

    def test_small_inputs_stay_serial_by_threshold(self):
        db = Database(exec_workers=4)  # default PARALLEL_MIN_ROWS
        db.executescript(
            "CREATE TABLE t (k BIGINT); INSERT INTO t VALUES (1), (1), (2);"
        )
        db.execute("SELECT k, count(*) FROM t GROUP BY k")
        assert db.parallel_stats()["parallel_op_total"] == 0

    def test_set_exec_workers_resizes_and_keeps_counters(self):
        db = Database(exec_workers=2, morsel_rows=8, parallel_min_rows=0)
        db.execute("CREATE TABLE t (k BIGINT)")
        db.table("t").insert_columns(
            [Column(DataType.BIGINT, np.arange(64, dtype=np.int64) % 3)]
        )
        db.execute("SELECT DISTINCT k FROM t")
        before = db.parallel_stats()["parallel_op_total"]
        assert before >= 1
        assert db.set_exec_workers(1) == 1
        db.execute("SELECT DISTINCT k FROM t WHERE k >= 0")
        after = db.parallel_stats()
        assert after["workers"] == 1
        assert after["parallel_op_total"] == before  # counters carried over

    def test_retired_pool_runs_morsels_inline(self):
        # a statement holding a pool retired by set_exec_workers must
        # finish inline, not resurrect stray threads on the orphan
        pool = ExecPool(2, morsel_rows=4, min_rows=0)
        ctx = pool.context()
        pool.shutdown()
        assert pool.executor() is None
        keys = np.array([3, 1, 2, 1, 0, 3, 2, 2, 1], dtype=np.int64)
        assert (
            mp.parallel_stable_argsort(keys, ctx).tolist()
            == np.argsort(keys, kind="stable").tolist()
        )

    def test_resize_during_flight_does_not_crash_statements(self):
        # set_exec_workers racing in-flight queries: readers must finish
        # (inline fallback on the retired pool), never raise
        db = Database(exec_workers=3, morsel_rows=64, parallel_min_rows=0)
        db.execute("CREATE TABLE t (k BIGINT)")
        db.table("t").insert_columns(
            [Column(DataType.BIGINT, np.arange(5000, dtype=np.int64) % 13)]
        )
        expected = db.execute(
            "SELECT k, count(*) FROM t GROUP BY k ORDER BY k"
        ).rows()
        errors: list = []
        done = threading.Event()

        def reader():
            try:
                with db.connect() as session:
                    while not done.is_set():
                        rows = session.execute(
                            "SELECT k, count(*) FROM t GROUP BY k ORDER BY k"
                        ).rows()
                        assert rows == expected
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def resizer():
            try:
                for workers in (2, 4, 1, 3) * 5:
                    db.set_exec_workers(workers)
            finally:
                done.set()

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=resizer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_profile_report_has_parallel_footer(self):
        db = Database(exec_workers=2, morsel_rows=8, parallel_min_rows=0)
        db.execute("CREATE TABLE t (k BIGINT)")
        db.table("t").insert_columns(
            [Column(DataType.BIGINT, np.arange(64, dtype=np.int64) % 3)]
        )
        _, report = db.profile("SELECT k, count(*) FROM t GROUP BY k")
        assert "parallel kernels: workers=2" in report
        assert "morsels=" in report
        assert "avg_morsel=" in report

    def test_shell_workers_command_shows_and_sets_exec_pool(self):
        import io

        from repro.cli import Shell

        out = io.StringIO()
        shell = Shell(
            db=Database(exec_workers=2, morsel_rows=8, parallel_min_rows=0),
            out=out,
        )
        shell.feed_line("\\workers")
        assert "exec workers: 2" in out.getvalue()
        shell.feed_line("\\workers exec 1")
        assert "exec workers: 1" in out.getvalue()
        assert shell.db.exec_pool.workers == 1
        shell.feed_line("\\workers 3")  # bare number: path workers
        assert shell.db.path_workers == 3
