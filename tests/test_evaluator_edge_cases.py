"""Expression-evaluator edge cases: scalar functions over NULLs, LIKE
metacharacters, modulo semantics, numeric boundaries."""

import pytest

from repro import Database


@pytest.fixture
def db():
    return Database()


class TestScalarFunctionNulls:
    def test_substr_null(self, db):
        assert db.execute("SELECT substr(NULL, 1, 2)").scalar() is None

    def test_replace_null_pattern(self, db):
        assert db.execute("SELECT replace('abc', NULL, 'x')").scalar() is None

    def test_trim_null(self, db):
        assert db.execute("SELECT trim(NULL)").scalar() is None

    def test_year_of_null(self, db):
        db.execute("CREATE TABLE d (day DATE)")
        db.execute("INSERT INTO d VALUES (NULL)")
        assert db.execute("SELECT year(day) FROM d").scalar() is None

    def test_greatest_with_null(self, db):
        # NULL poisons GREATEST (standard behaviour)
        assert db.execute("SELECT greatest(1, NULL, 3)").scalar() is None

    def test_abs_null(self, db):
        assert db.execute("SELECT abs(NULL)").scalar() is None

    def test_ln_of_nonpositive_is_null(self, db):
        assert db.execute("SELECT ln(0.0)").scalar() is None
        assert db.execute("SELECT ln(-1.0)").scalar() is None

    def test_sqrt_of_negative_is_null(self, db):
        assert db.execute("SELECT sqrt(-4.0)").scalar() is None


class TestStringFunctions:
    def test_substr_from_position(self, db):
        assert db.execute("SELECT substr('hello', 2)").scalar() == "ello"

    def test_substr_with_length(self, db):
        assert db.execute("SELECT substr('hello', 2, 3)").scalar() == "ell"

    def test_substr_beyond_end(self, db):
        assert db.execute("SELECT substr('hi', 5, 3)").scalar() == ""

    def test_replace_all_occurrences(self, db):
        assert db.execute("SELECT replace('aaa', 'a', 'b')").scalar() == "bbb"

    def test_trim_variants(self, db):
        rows = db.execute("SELECT trim(' x '), ltrim(' x '), rtrim(' x ')").rows()
        assert rows == [("x", "x ", " x")]

    def test_length_of_empty(self, db):
        assert db.execute("SELECT length('')").scalar() == 0

    def test_nested_string_functions(self, db):
        assert db.execute(
            "SELECT upper(substr(replace('a-b-c', '-', '_'), 1, 3))"
        ).scalar() == "A_B"


class TestLikePatterns:
    def _match(self, db, value, pattern):
        return db.execute(f"SELECT '{value}' LIKE '{pattern}'").scalar()

    def test_percent_matches_empty(self, db):
        assert self._match(db, "abc", "abc%")

    def test_underscore_is_one_char(self, db):
        assert self._match(db, "abc", "a_c")
        assert not self._match(db, "abbc", "a_c")

    def test_regex_metachars_are_literal(self, db):
        assert self._match(db, "a.c", "a.c")
        assert not self._match(db, "axc", "a.c")
        assert self._match(db, "a+b", "a+b")
        assert self._match(db, "(x)", "(x)")

    def test_pattern_must_cover_whole_string(self, db):
        assert not self._match(db, "abc", "b")
        assert self._match(db, "abc", "%b%")

    def test_like_null_is_null(self, db):
        assert db.execute("SELECT NULL LIKE 'a%'").scalar() is None


class TestArithmeticBoundaries:
    def test_mod_truncates_toward_zero(self, db):
        rows = db.execute("SELECT 7 % 3, -7 % 3, 7 % -3").rows()
        assert rows == [(1, -1, 1)]

    def test_mod_by_zero_is_null(self, db):
        assert db.execute("SELECT 5 % 0").scalar() is None

    def test_float_mod(self, db):
        assert db.execute("SELECT 7.5 % 2.0").scalar() == pytest.approx(1.5)

    def test_bigint_values_survive(self, db):
        big = 2**62
        assert db.execute("SELECT ?", (big,)).scalar() == big

    def test_negative_literal_precedence(self, db):
        assert db.execute("SELECT -2 * 3").scalar() == -6
        assert db.execute("SELECT -(2 + 3)").scalar() == -5

    def test_integer_overflow_promotes_via_bigint(self, db):
        assert db.execute("SELECT 2000000000 + 2000000000").scalar() == 4000000000

    def test_comparison_across_widths(self, db):
        assert db.execute("SELECT 1 = 1.0").scalar() is True
        assert db.execute("SELECT 2147483648 > 1").scalar() is True


class TestCastEdgeCases:
    def test_round_trip_int_varchar(self, db):
        assert db.execute("SELECT CAST(CAST(42 AS varchar) AS int)").scalar() == 42

    def test_cast_bool_to_int(self, db):
        assert db.execute("SELECT CAST(TRUE AS int)").scalar() == 1

    def test_cast_string_date_roundtrip(self, db):
        import datetime as dt

        value = db.execute("SELECT CAST('2010-03-24' AS date)").scalar()
        assert value == dt.date(2010, 3, 24)

    def test_cast_double_to_varchar(self, db):
        assert db.execute("SELECT CAST(1.5 AS varchar)").scalar() == "1.5"

    def test_invalid_cast_raises(self, db):
        from repro.errors import TypeError_

        with pytest.raises(TypeError_):
            db.execute("SELECT CAST('abc' AS int)")


class TestCoalesceAndCase:
    def test_coalesce_mixed_numeric(self, db):
        assert db.execute("SELECT coalesce(NULL, 2.5)").scalar() == 2.5

    def test_coalesce_all_null(self, db):
        assert db.execute("SELECT coalesce(NULL, NULL)").scalar() is None

    def test_case_without_else_is_null(self, db):
        assert db.execute("SELECT CASE WHEN 1 = 2 THEN 'x' END").scalar() is None

    def test_case_first_match_wins(self, db):
        assert db.execute(
            "SELECT CASE WHEN TRUE THEN 'a' WHEN TRUE THEN 'b' END"
        ).scalar() == "a"

    def test_case_numeric_promotion(self, db):
        assert db.execute(
            "SELECT CASE WHEN FALSE THEN 1 ELSE 2.5 END"
        ).scalar() == 2.5
