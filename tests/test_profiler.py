"""Per-operator profiling instrumentation."""

import pytest

from repro import Database
from repro.errors import ExecutionError


class TestProfile:
    def test_returns_result_and_report(self, chain_db):
        result, report = chain_db.profile("SELECT * FROM edges WHERE w = 1")
        assert result.rows() and "Scan edges" in report
        assert "self=" in report and "rows=" in report

    def test_graph_select_annotated(self, chain_db):
        result, report = chain_db.profile(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 5 OVER edges EDGE (s, d)"
        )
        assert result.scalar() == 1
        assert "GraphSelect [cheapest=1]" in report

    def test_row_counts_reported(self, chain_db):
        _, report = chain_db.profile("SELECT * FROM edges")
        assert "rows=5" in report

    def test_recursive_cte_call_counts(self):
        db = Database()
        _, report = db.profile(
            "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM r "
            "WHERE n < 4) SELECT count(*) FROM r"
        )
        # the recursive branch executes once per iteration
        assert "calls=" in report

    def test_graph_select_dominates_single_pair(self, chain_db):
        # the paper's headline observation, visible per-operator: the
        # graph operator's self time exceeds the scan's
        import re

        _, report = chain_db.profile(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 5 OVER edges EDGE (s, d)"
        )
        times = {
            line.strip().split()[0]: float(
                re.search(r"self=([0-9.]+)ms", line).group(1)
            )
            for line in report.splitlines()
            if "self=" in line
        }
        assert times["GraphSelect"] >= times["Scan"]

    def test_profile_rejects_ddl(self, chain_db):
        with pytest.raises(ExecutionError):
            chain_db.profile("CREATE TABLE t (x INT)")

    def test_profile_with_params(self, chain_db):
        result, _ = chain_db.profile(
            "SELECT count(*) FROM edges WHERE s = ?", (1,)
        )
        assert result.scalar() == 2

    def test_plain_execute_unaffected(self, chain_db):
        # no profiler attached by default
        result = chain_db.execute("SELECT count(*) FROM edges")
        assert result.scalar() == 5


class TestMisestimateFlag:
    """Operators whose actual cardinality is >=10x off the estimate are
    flagged — the hook adaptive re-optimization builds on."""

    def test_ratio_is_symmetric_and_floored(self):
        from repro.exec.profiler import misestimate_ratio

        assert misestimate_ratio(100, 10) == pytest.approx(10.0)
        assert misestimate_ratio(10, 100) == pytest.approx(10.0)
        assert misestimate_ratio(0, 0) == pytest.approx(1.0)
        assert misestimate_ratio(5000, 0) == pytest.approx(5000.0)
        assert misestimate_ratio(3, 0) == pytest.approx(3.0)

    def test_underestimate_is_flagged(self):
        # 1000 identical keys, no ANALYZE: the heuristic equality
        # selectivity estimates a handful of rows, the filter returns 1000
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES " + ", ".join("(5)" for _ in range(1000)))
        _, report = db.profile("SELECT * FROM t WHERE x = 5")
        assert "MISESTIMATE(" in report

    def test_accurate_estimate_not_flagged(self, chain_db):
        chain_db.execute("ANALYZE edges")
        _, report = chain_db.profile("SELECT * FROM edges")
        assert "MISESTIMATE" not in report

    def test_misestimates_collected_programmatically(self):
        from repro.exec.operators import ExecContext, execute_plan
        from repro.exec.profiler import Profiler

        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES " + ", ".join("(7)" for _ in range(500)))
        entry = db.prepare_plan("SELECT * FROM t WHERE x = 7")
        profiler = Profiler()
        ctx = ExecContext(db, (), profiler=profiler)
        execute_plan(entry.plan, ctx)
        profiler.render(entry.plan)
        assert profiler.misestimates
        name, estimated, actual = profiler.misestimates[0]
        assert actual / max(estimated, 1.0) >= 10


class TestFallbackReasonBreakdown:
    """The footer breaks kernel fallbacks down by cause, not one counter."""

    def test_nan_sort_key_reason(self):
        db = Database()
        db.execute("CREATE TABLE t (v DOUBLE)")
        db.execute(
            "INSERT INTO t VALUES (1.0), (?), (0.5)", (float("nan"),)
        )
        _, report = db.profile("SELECT v FROM t ORDER BY v")
        assert "sort:nan-order=1" in report
        stats = db.kernel_stats()
        assert stats["fallback_reasons"]["sort"]["nan-order"] == 1

    def test_kernel_less_aggregate_reason(self):
        db = Database()
        db.executescript(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (1), (2);"
        )
        _, report = db.profile("SELECT count(DISTINCT a) FROM t")
        assert "aggregate:no-kernel=1" in report

    def test_uncodifiable_type_reason(self):
        db = Database()
        db.executescript(
            """
            CREATE TABLE e (s INT, d INT);
            INSERT INTO e VALUES (1, 2), (2, 3), (4, 5);
            CREATE TABLE p (src INT, dst INT);
            INSERT INTO p VALUES (1, 3), (4, 5);
            """
        )
        # nested-table (path) sort keys have no order: the kernel
        # declines with the uncodifiable reason (and the row comparator
        # then raises its own pre-existing TypeError — unchanged)
        with pytest.raises(TypeError):
            db.execute(
                "SELECT T.c FROM (SELECT p.src, CHEAPEST SUM(1) AS (c, pa) "
                "FROM p WHERE p.src REACHES p.dst OVER e EDGE (s, d)) T "
                "ORDER BY T.pa"
            )
        stats = db.kernel_stats()
        assert stats["fallback_reasons"]["sort"]["uncodifiable"] == 1

    def test_reasons_accumulate_per_op(self):
        db = Database()
        db.execute("CREATE TABLE t (v DOUBLE)")
        db.execute("INSERT INTO t VALUES (1.0), (?)", (float("nan"),))
        db.execute("SELECT v FROM t ORDER BY v")
        db.execute("SELECT v FROM t ORDER BY v DESC")
        stats = db.kernel_stats()
        assert stats["fallback_reasons"]["sort"]["nan-order"] == 2
        assert stats["fallbacks"]["sort"] == 2
