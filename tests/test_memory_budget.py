"""Forced-budget equivalence oracle for memory-bounded execution.

``Database(memory_budget=N)`` may change *how* queries execute —
streamed scans, spill-partitioned aggregation and joins, external
sorts — but never *what* they answer.  Every test here runs the same
statement against a budgeted engine and the unbudgeted materialized
oracle (``memory_budget=None``) over identical data and requires
bit-identical results, including NULL and NaN grouping/join keys,
ANALYZE-encoded columns, and ``exec_workers > 1``.  Errors are
compared by type only: the spilled join evaluates its degenerate-join
guard cumulatively, so the guard trips on the same inputs but may
word its message differently.
"""

import io
import json
import os
import random
import subprocess
import sys
import tempfile

import numpy as np
import pytest

from repro import Database, ReproError
from repro.cli import Shell
from repro.storage.spill import SpillManager
from test_fuzz import random_query

SCHEMA = """
    CREATE TABLE t1 (a INT, b VARCHAR, c DOUBLE);
    CREATE TABLE t2 (a INT, d INT);
    CREATE TABLE e (s INT, d INT, w INT);
    INSERT INTO t1 VALUES
        (1, 'x', 0.5), (2, 'y', 1.5), (3, NULL, 2.5), (NULL, 'z', NULL);
    INSERT INTO t2 VALUES (1, 10), (2, 20), (5, 50);
    INSERT INTO e VALUES (1, 2, 1), (2, 3, 2), (3, 1, 3), (2, 5, 1);
"""


def assert_equivalent(budgeted, oracle, sql, params=()):
    try:
        expected = oracle.execute(sql, params).rows()
        expected_error = None
    except ReproError as exc:
        expected, expected_error = None, exc
    try:
        actual = budgeted.execute(sql, params).rows()
        actual_error = None
    except ReproError as exc:
        actual, actual_error = None, exc
    if expected_error is not None or actual_error is not None:
        assert type(expected_error) is type(actual_error), (
            f"error mismatch for {sql!r}: "
            f"oracle={expected_error!r} budgeted={actual_error!r}"
        )
        return
    # repr-compare: row order must match exactly, and NaN keys (which
    # never compare equal as floats) must land in the same groups
    assert list(map(repr, actual)) == list(map(repr, expected)), sql


class TestBudgetFuzzEquivalence:
    """test_fuzz's query grammar under a budget too small to hold anything."""

    @pytest.fixture(scope="class", params=[1, 1 << 20])
    def engines(self, request):
        budgeted = Database(memory_budget=request.param)
        oracle = Database(memory_budget=None)
        budgeted.executescript(SCHEMA)
        oracle.executescript(SCHEMA)
        budgeted.execute("ANALYZE")
        oracle.execute("ANALYZE")
        yield budgeted, oracle
        budgeted.close()
        oracle.close()

    def test_relational_fuzz_corpus(self, engines):
        budgeted, oracle = engines
        rng = random.Random(20260808)
        for _ in range(200):
            assert_equivalent(budgeted, oracle, random_query(rng))

    def test_default_is_unbudgeted(self):
        db = Database()
        assert db.memory_budget is None
        assert db.memory_stats()["spills"] == 0
        db.close()

    def test_env_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "65536")
        db = Database()
        assert db.memory_budget == 65536
        db.close()
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "0")
        db = Database()
        assert db.memory_budget is None
        db.close()


def _seed_bulk(db, tmp):
    """400k-row fact + 1k-row dim with NULL and NaN keys, then ANALYZE.

    ``k`` spans a narrow clustered domain so ANALYZE adopts resting
    encodings — the budgeted paths must decode morsels transparently.
    """
    db.execute("CREATE TABLE fact (k BIGINT, f DOUBLE, v BIGINT)")
    db.execute("CREATE TABLE dim (id BIGINT, w BIGINT)")
    db.execute(f"COPY fact FROM '{os.path.join(tmp, 'fact.npz')}'")
    db.execute(f"COPY dim FROM '{os.path.join(tmp, 'dim.npz')}'")
    # NULL and NaN keys ride on top of the bulk load
    db.insert_rows(
        "fact",
        [(None, float("nan"), 1), (None, None, 2), (7, float("nan"), 3)] * 5,
    )
    db.execute("ANALYZE")


QUERIES = [
    "SELECT k, COUNT(*) AS c, SUM(v) AS s, AVG(v) AS m FROM fact "
    "GROUP BY k ORDER BY k",
    "SELECT f, COUNT(*) AS c FROM fact GROUP BY f ORDER BY c, f",
    "SELECT COUNT(*) AS c, SUM(v) AS s, MIN(k) AS lo, MAX(k) AS hi FROM fact",
    "SELECT dim.w, COUNT(*) AS c, SUM(fact.v) AS s FROM fact "
    "JOIN dim ON fact.k = dim.id GROUP BY dim.w ORDER BY dim.w",
    "SELECT fact.k, fact.v FROM fact JOIN dim ON fact.k = dim.id "
    "WHERE fact.v < 3 ORDER BY fact.k, fact.v",
    "SELECT k, v FROM fact WHERE v >= 995 ORDER BY v DESC, k LIMIT 100",
    "SELECT k FROM fact WHERE k IN (SELECT id FROM dim) "
    "AND v = 0 ORDER BY k LIMIT 20",
]


class TestSpillEquivalence:
    """Large inputs actually spill, and answers never move."""

    @pytest.fixture(scope="class")
    def datadir(self):
        rng = np.random.default_rng(20260808)
        n, d = 400_000, 1_000
        with tempfile.TemporaryDirectory() as tmp:
            np.savez(
                os.path.join(tmp, "fact.npz"),
                k=rng.integers(0, 20_000, n),
                f=np.round(rng.normal(0.0, 2.0, n), 3),
                v=rng.integers(0, 1_000, n),
            )
            np.savez(
                os.path.join(tmp, "dim.npz"),
                id=np.arange(9_500, 9_500 + d),
                w=rng.integers(0, 50, d),
            )
            yield tmp

    @pytest.fixture(scope="class")
    def oracle(self, datadir):
        db = Database(memory_budget=None)
        _seed_bulk(db, datadir)
        yield db
        db.close()

    @pytest.fixture(scope="class", params=[1 << 20, 8 << 20])
    def budgeted(self, request, datadir):
        db = Database(memory_budget=request.param)
        _seed_bulk(db, datadir)
        yield db
        db.close()

    def test_bit_identical_under_budget(self, budgeted, oracle):
        for sql in QUERIES:
            assert_equivalent(budgeted, oracle, sql)
        stats = budgeted.memory_stats()
        if budgeted.memory_budget <= 1 << 20:
            # the estimator prices *encoded* bytes — the 8 MiB budget
            # legitimately holds these inputs without spilling
            assert stats["spills"] > 0 and stats["partitions"] > 0
        assert stats["streams"] > 0
        assert stats["bytes_read"] == stats["bytes_written"]
        # every partition file is consumed and removed after its query
        directory = budgeted.spill_manager._dir
        assert directory is None or os.listdir(directory) == []

    def test_external_sort_runs(self, budgeted, oracle):
        # no float key here: NaN ordering falls back to the row path,
        # which never reaches the external sort
        sql = "SELECT k, v FROM fact ORDER BY v, k LIMIT 500"
        before = budgeted.memory_stats()["sort_runs"]
        assert_equivalent(budgeted, oracle, sql)
        if budgeted.memory_budget <= 1 << 20:
            assert budgeted.memory_stats()["sort_runs"] > before

    def test_nan_order_falls_back_identically(self, budgeted, oracle):
        assert_equivalent(
            budgeted, oracle,
            "SELECT k, f, v FROM fact ORDER BY f, k, v LIMIT 200",
        )

    def test_workers_compose_with_budget(self, datadir, oracle):
        db = Database(memory_budget=1 << 20, exec_workers=2)
        _seed_bulk(db, datadir)
        try:
            for sql in QUERIES:
                assert_equivalent(db, oracle, sql)
            assert db.memory_stats()["spills"] > 0
        finally:
            db.close()

    def test_uncompressed_compose_with_budget(self, datadir, oracle):
        db = Database(memory_budget=1 << 20, compression=False)
        _seed_bulk(db, datadir)
        try:
            for sql in QUERIES[:5]:
                assert_equivalent(db, oracle, sql)
        finally:
            db.close()

    def test_join_probe_zone_pruning(self, budgeted, oracle):
        before = (
            budgeted.storage_stats()["dynamic_zone_filters"].get("join_probe", 0)
        )
        sql = (
            "SELECT COUNT(*) AS c, SUM(fact.v) AS s FROM fact "
            "JOIN dim ON fact.k = dim.id"
        )
        assert_equivalent(budgeted, oracle, sql)
        after = budgeted.storage_stats()["dynamic_zone_filters"]["join_probe"]
        assert after > before
        plan = "\n".join(r[0] for r in budgeted.execute("EXPLAIN " + sql).rows())
        assert "zone-probe=k" in plan
        assert "dynamic zone filters" in plan

    def test_in_subquery_zone_pruning(self, budgeted, oracle):
        before = (
            budgeted.storage_stats()["dynamic_zone_filters"].get("in_subquery", 0)
        )
        sql = (
            "SELECT COUNT(*) AS c FROM fact "
            "WHERE k IN (SELECT id FROM dim) AND v < 10"
        )
        assert_equivalent(budgeted, oracle, sql)
        after = budgeted.storage_stats()["dynamic_zone_filters"]["in_subquery"]
        assert after > before


class TestSpillHousekeeping:
    def test_spill_files_swept_on_close(self):
        db = Database(memory_budget=1)
        directory = db.spill_manager._ensure_dir()
        with open(os.path.join(directory, "run-000000-x.spill"), "wb") as fh:
            fh.write(b"junk")
        db.close()
        assert not os.path.isdir(directory)

    def test_stale_spill_swept_on_open(self, tmp_path):
        target = str(tmp_path / "db")
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.insert_rows("t", [(1,), (2,)])
        db.save(target)
        db.close()
        stale = os.path.join(target, SpillManager.DIR_NAME)
        os.makedirs(stale)
        with open(os.path.join(stale, "leftover.spill"), "wb") as fh:
            fh.write(b"junk")
        reopened = Database.open(target)
        try:
            assert reopened.recovery_info["swept_spill_files"] == 1
            assert not os.path.exists(os.path.join(stale, "leftover.spill"))
            assert reopened.execute("SELECT COUNT(*) AS c FROM t").rows() == [(2,)]
        finally:
            reopened.close()

    def test_shell_memory_command(self):
        out = io.StringIO()
        shell = Shell(db=Database(memory_budget=4096), out=out)
        shell.feed_line("\\memory")
        text = out.getvalue()
        assert "4096" in text
        assert "spills" in text and "streaming" in text

    def test_profile_reports_memory(self):
        db = Database(memory_budget=1)
        db.execute("CREATE TABLE t (x BIGINT)")
        db.insert_rows("t", [(i % 5,) for i in range(200)])
        _, report = db.profile("SELECT x, COUNT(*) AS c FROM t GROUP BY x")
        assert "memory: budget=1" in report
        db.close()


_RLIMIT_CHILD = r"""
import json, os, resource, sys
import numpy as np
sys.path.insert(0, sys.argv[1])
cap = int(sys.argv[3])
resource.setrlimit(resource.RLIMIT_DATA, (cap, cap))
from repro import Database
db = Database.open(sys.argv[2], memory_budget=4 << 20)
rows = db.execute(
    "SELECT k, COUNT(*) AS c, SUM(v) AS s FROM fact GROUP BY k ORDER BY k"
).rows()
stats = db.memory_stats()
print(json.dumps({
    "rows": len(rows),
    "checksum": int(sum(r[2] for r in rows)),
    "spills": stats["spills"],
}))
"""


class TestRlimitCapped:
    def test_budgeted_group_by_under_rlimit(self, tmp_path):
        """A budgeted aggregation finishes inside an address-space cap.

        RLIMIT_DATA bounds heap/anonymous memory only — the persisted
        image itself arrives via mmap — so the cap constrains exactly
        what the budget is supposed to bound: decoded morsels, hash
        tables, and spill buffers.
        """
        rng = np.random.default_rng(7)
        n = 300_000
        db = Database()
        db.execute("CREATE TABLE fact (k BIGINT, v BIGINT)")
        npz = str(tmp_path / "fact.npz")
        np.savez(npz, k=rng.integers(0, 4_000, n), v=rng.integers(0, 100, n))
        db.execute(f"COPY fact FROM '{npz}'")
        db.execute("ANALYZE")
        expected = db.execute(
            "SELECT k, COUNT(*) AS c, SUM(v) AS s FROM fact GROUP BY k ORDER BY k"
        ).rows()
        target = str(tmp_path / "db")
        db.save(target)
        db.close()

        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        proc = subprocess.run(
            [sys.executable, "-c", _RLIMIT_CHILD, src, target, str(512 << 20)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["rows"] == len(expected)
        assert payload["checksum"] == sum(r[2] for r in expected)
