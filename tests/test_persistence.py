"""Save/load round trips for the database persistence layer."""

import datetime as dt
import json
import shutil

import numpy as np
import pytest

from repro import Database
from repro.errors import ReproError


def _downgrade_to_npz(target, format_version):
    """Rewrite a saved format-v4 image in the pre-v4 npz layout.

    Produces a *genuine* old-format image (one ``<table>.npz`` archive
    per table, no storage descriptors, and for <3 / <2 no CSR files /
    stats block) for back-compat coverage — the repo's committed v3
    fixture was generated the same way.
    """
    loaded = Database.load(str(target))
    meta = json.loads((target / "catalog.json").read_text())
    meta["format_version"] = format_version
    for name, table_meta in meta["tables"].items():
        table_meta.pop("storage", None)
        version = loaded.table(name).current()
        arrays = {}
        for i, column in enumerate(version.columns):
            if column.data.dtype == np.dtype(object):
                data = np.array(
                    ["" if v is None else v for v in column.data], dtype=np.str_
                )
            else:
                data = column.data
            arrays[f"col{i}_data"] = data
            arrays[f"col{i}_mask"] = column.null_mask()
        np.savez_compressed(str(target / f"{name}.npz"), **arrays)
        shutil.rmtree(target / f"{name}.tbl")
    if format_version < 3:
        for entry in meta.pop("graph_index_files", {}).values():
            (target / entry["file"]).unlink(missing_ok=True)
    if format_version < 2:
        meta.pop("stats", None)
    (target / "catalog.json").write_text(json.dumps(meta))


class TestRoundTrip:
    def test_all_types_survive(self, tmp_path):
        db = Database()
        db.executescript(
            """
            CREATE TABLE t (
                i INT, b BIGINT, f DOUBLE, s VARCHAR, day DATE, flag BOOLEAN
            );
            INSERT INTO t VALUES
                (1, 10000000000, 1.5, 'hello', '2020-05-17', TRUE),
                (2, -3, -0.25, '', '1970-01-01', FALSE);
            """
        )
        db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        assert loaded.execute("SELECT * FROM t ORDER BY i").rows() == [
            (1, 10000000000, 1.5, "hello", dt.date(2020, 5, 17), True),
            (2, -3, -0.25, "", dt.date(1970, 1, 1), False),
        ]

    def test_nulls_survive(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE t (x INT, s VARCHAR)")
        db.execute("INSERT INTO t VALUES (NULL, 'a'), (2, NULL)")
        db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        assert loaded.execute("SELECT * FROM t").rows() == [(None, "a"), (2, None)]

    def test_empty_table_survives(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE empty (x INT)")
        db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        assert loaded.execute("SELECT count(*) FROM empty").scalar() == 0

    def test_multiple_tables(self, tmp_path):
        db = Database()
        db.executescript(
            "CREATE TABLE a (x INT); CREATE TABLE b (y VARCHAR);"
            "INSERT INTO a VALUES (1); INSERT INTO b VALUES ('z')"
        )
        db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        assert loaded.catalog.table_names() == ["a", "b"]

    def test_graph_index_definitions_survive(self, tmp_path, chain_db):
        chain_db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        chain_db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        assert loaded.graph_indices.names() == ["gi"]
        assert loaded.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 5 OVER edges EDGE (s, d)"
        ).scalar() == 1

    def test_graph_queries_after_reload(self, tmp_path, social_db):
        social_db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        assert loaded.execute(
            "SELECT CHEAPEST SUM(1) "
            "WHERE ? REACHES ? OVER friends EDGE (person1, person2)",
            (933, 8333),
        ).scalar() == 2

    def test_save_overwrites_existing_directory(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        target = str(tmp_path / "db")
        db.save(target)
        db.execute("INSERT INTO t VALUES (1)")
        db.save(target)
        assert Database.load(target).execute("SELECT count(*) FROM t").scalar() == 1

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(ReproError, match="not a saved database"):
            Database.load(str(tmp_path / "nope"))

    def test_loaded_database_is_writable(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        loaded.execute("INSERT INTO t VALUES (5)")
        assert loaded.execute("SELECT x FROM t").rows() == [(5,)]


class TestAtomicSave:
    """``save_database`` stages into a temp dir and swaps atomically."""

    def test_no_stray_staging_directories_left(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        target = tmp_path / "db"
        db.save(str(target))
        db.save(str(target))  # overwrite path exercises the swap too
        assert sorted(p.name for p in tmp_path.iterdir()) == ["db"]

    def test_failed_save_preserves_the_old_image(self, tmp_path, monkeypatch):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        target = str(tmp_path / "db")
        db.save(target)

        # make the *second* save blow up mid-write: the first image must
        # survive untouched (no half-written mix)
        from repro import persist

        def exploding_write(db_, snapshot, directory, **kwargs):
            (tmp_path / "db.partial-marker").write_text("")
            raise RuntimeError("disk full")

        monkeypatch.setattr(persist, "_write_image", exploding_write)
        db.execute("INSERT INTO t VALUES (2)")
        with pytest.raises(RuntimeError, match="disk full"):
            db.save(target)
        monkeypatch.undo()
        loaded = Database.load(target)
        assert loaded.execute("SELECT count(*) FROM t").scalar() == 1
        # and the staging directory was cleaned up
        stray = [p.name for p in tmp_path.iterdir() if p.name.startswith("db.saving")]
        assert stray == []

    def test_save_is_snapshot_consistent_under_concurrent_writes(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        snapshot = db.pin_snapshot()  # the state save() will serialize
        db.execute("INSERT INTO t VALUES (3)")  # "concurrent" writer
        from repro.persist import save_database

        save_database(db, str(tmp_path / "db"), snapshot)
        loaded = Database.load(str(tmp_path / "db"))
        assert loaded.execute("SELECT count(*) FROM t").scalar() == 2


class TestStatsPersistence:
    """ANALYZE statistics survive a save/load round trip."""

    def test_stats_round_trip(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE t (x INT, s VARCHAR)")
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (2, NULL)")
        db.execute("ANALYZE t")
        db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        stats = loaded.table_stats()["t"]
        assert stats.row_count == 3
        assert not stats.stale
        assert stats.column("x").distinct == 2
        assert stats.column("x").min_value == 1
        assert stats.column("x").max_value == 2
        assert stats.column("s").null_count == 1

    def test_restored_stats_feed_the_optimizer(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES " + ", ".join(f"({i})" for i in range(100)))
        db.execute("ANALYZE t")
        db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        # min/max survived: an out-of-range predicate estimates 0 rows
        # instead of the magic-number fallback
        text = loaded.explain("SELECT * FROM t WHERE x > 1000")
        assert "est_rows=0" in text

    def test_stale_flag_survives(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("ANALYZE t")
        db.execute("INSERT INTO t VALUES (2)")  # marks stats stale
        db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        assert loaded.table_stats()["t"].stale

    def test_unanalyzed_database_round_trips_without_stats(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        assert loaded.table_stats() == {}


class TestGraphIndexPersistence:
    """Format v3: built CSR indices are saved and seeded on load."""

    def test_csr_archive_written_and_no_rebuild_on_load(self, tmp_path, chain_db):
        chain_db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        target = tmp_path / "db"
        chain_db.save(str(target))
        assert (target / "graphindex-gi.npz").exists()
        loaded = Database.load(str(target))
        # the first graph query is served from the seeded cache: a hit,
        # zero builds
        assert loaded.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 5 OVER edges EDGE (s, d)"
        ).scalar() == 1
        stats = loaded.graph_indices.stats()
        assert stats["builds"] == 0
        assert stats["hits"] >= 1

    def test_seeded_csr_matches_a_fresh_build(self, tmp_path, social_db):
        social_db.execute(
            "CREATE GRAPH INDEX fr ON friends EDGE (person1, person2)"
        )
        social_db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        fresh = Database.load(str(tmp_path / "db"))
        fresh.graph_indices._cache.clear()  # force a rebuild on `fresh`
        sql = (
            "SELECT CHEAPEST SUM(k: weight) WHERE ? REACHES ? "
            "OVER friends k EDGE (person1, person2)"
        )
        for src, dst in [(933, 8333), (8333, 4139), (933, 933), (1, 933)]:
            assert (
                loaded.execute(sql, (src, dst)).rows()
                == fresh.execute(sql, (src, dst)).rows()
            )
        assert loaded.graph_indices.stats()["builds"] == 0
        assert fresh.graph_indices.stats()["builds"] >= 1

    def test_string_keyed_domain_round_trips(self, tmp_path):
        db = Database()
        db.executescript(
            """
            CREATE TABLE se (s VARCHAR, d VARCHAR);
            INSERT INTO se VALUES ('ada', 'bob'), ('bob', 'cyd'), ('cyd', 'ada');
            CREATE GRAPH INDEX sgi ON se EDGE (s, d);
            """
        )
        db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        assert loaded.execute(
            "SELECT CHEAPEST SUM(1) WHERE 'ada' REACHES 'cyd' OVER se EDGE (s, d)"
        ).scalar() == 2
        assert loaded.graph_indices.stats()["builds"] == 0

    def test_dml_after_load_invalidates_seeded_csr(self, tmp_path, chain_db):
        chain_db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        chain_db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        loaded.execute("INSERT INTO edges VALUES (5, 6, 1)")
        assert loaded.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 6 OVER edges EDGE (s, d)"
        ).scalar() == 2  # sees the new edge: the stale CSR was dropped
        assert loaded.graph_indices.stats()["builds"] >= 1

    def test_unbuilt_index_is_not_force_built_by_save(self, tmp_path, chain_db):
        chain_db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        # drop the eagerly-built library: save must NOT rebuild it
        chain_db.graph_indices.invalidate_table("edges")
        builds_before = chain_db.graph_indices.stats()["builds"]
        target = tmp_path / "db"
        chain_db.save(str(target))
        assert chain_db.graph_indices.stats()["builds"] == builds_before
        assert not (target / "graphindex-gi.npz").exists()
        loaded = Database.load(str(target))  # lazy rebuild, pre-v3 style
        assert loaded.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 5 OVER edges EDGE (s, d)"
        ).scalar() == 1
        assert loaded.graph_indices.stats()["builds"] >= 1

    def test_old_format_v2_image_still_loads(self, tmp_path, chain_db):
        chain_db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        target = tmp_path / "db"
        chain_db.save(str(target))
        # rewrite the image in the v2 layout: npz tables, no CSR files
        _downgrade_to_npz(target, 2)
        loaded = Database.load(str(target))
        assert loaded.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 5 OVER edges EDGE (s, d)"
        ).scalar() == 1  # lazily rebuilt, as before v3
        assert loaded.graph_indices.stats()["builds"] >= 1


class TestFormatV4:
    """Format v4: per-column mmap-able .npy files in resting encodings."""

    @staticmethod
    def _wide_db(n=300):
        db = Database()
        db.execute(
            "CREATE TABLE t (id BIGINT, grp VARCHAR, val DOUBLE, day DATE)"
        )
        db.insert_rows(
            "t",
            [
                (
                    i,
                    None if i % 7 == 0 else f"g{i % 3}",
                    None if i % 11 == 0 else float(i) / 4,
                    dt.date(2020, 1, 1) + dt.timedelta(days=i % 40),
                )
                for i in range(n)
            ],
        )
        db.execute("ANALYZE")
        return db

    def test_v4_layout_written(self, tmp_path):
        db = self._wide_db()
        target = tmp_path / "db"
        db.save(str(target))
        meta = json.loads((target / "catalog.json").read_text())
        assert meta["format_version"] == 4
        assert (target / "t.tbl").is_dir()
        kinds = [d["kind"] for d in meta["tables"]["t"]["storage"]]
        assert len(kinds) == 4
        assert "dict" in kinds  # grp is low-cardinality VARCHAR

    def test_v4_round_trip_preserves_values_and_encodings(self, tmp_path):
        db = self._wide_db()
        target = tmp_path / "db"
        db.save(str(target))
        loaded = Database.load(str(target))
        # resting encodings survive the trip (no re-encode on load)
        info = loaded.table("t").current().resting_info()
        assert info["grp"][0] == "dict"
        sql = "SELECT * FROM t ORDER BY id"
        assert repr(loaded.execute(sql).rows()) == repr(db.execute(sql).rows())

    def test_v4_columns_load_lazily(self, tmp_path):
        db = self._wide_db()
        target = tmp_path / "db"
        db.save(str(target))
        loaded = Database.load(str(target))
        column = loaded.table("t").current().column("val")
        # nothing materialized yet: len() comes from the descriptor
        assert column._data is None
        assert len(column) == 300
        assert column._data is None
        # first touch decodes (and caches)
        assert float(column.data[4]) == 1.0
        assert column._data is not None

    def test_v4_compression_false_loads_plain(self, tmp_path):
        db = self._wide_db()
        target = tmp_path / "db"
        db.save(str(target))
        loaded = Database.load(str(target), compression=False)
        info = loaded.table("t").current().resting_info()
        assert all(kind == "plain" for kind, _ in info.values())
        sql = "SELECT * FROM t ORDER BY id"
        assert repr(loaded.execute(sql).rows()) == repr(db.execute(sql).rows())

    def test_compression_false_database_saves_plain_layout(self, tmp_path):
        db = Database(compression=False)
        db.execute("CREATE TABLE t (x INT, s VARCHAR)")
        db.insert_rows("t", [(i, f"s{i % 2}") for i in range(50)])
        target = tmp_path / "db"
        db.save(str(target))
        meta = json.loads((target / "catalog.json").read_text())
        kinds = {d["kind"] for d in meta["tables"]["t"]["storage"]}
        assert kinds == {"plain"}
        loaded = Database.load(str(target))
        assert loaded.execute("SELECT count(*) FROM t").scalar() == 50

    def test_persisted_zone_maps_survive_and_skip(self, tmp_path, monkeypatch):
        import repro.storage.zonemap as zm_module

        db = self._wide_db()
        target = tmp_path / "db"
        db.save(str(target))
        zones = list((target / "t.tbl").glob("*.zones.npz"))
        assert zones  # at least the numeric columns persisted maps
        loaded = Database.load(str(target))
        column = loaded.table("t").current().column("id")
        assert column._zones  # seeded from the image, not rebuilt

    def test_stale_zone_map_is_discarded_on_load(self, tmp_path):
        db = self._wide_db()
        target = tmp_path / "db"
        db.save(str(target))
        # doctor the id column's zone map so it describes a different
        # version's row count (the stale case)
        meta = json.loads((target / "catalog.json").read_text())
        idx = [c[0] for c in meta["tables"]["t"]["columns"]].index("id")
        zone_path = target / "t.tbl" / f"col{idx}.zones.npz"
        archive = dict(np.load(str(zone_path)))
        archive["meta"] = np.array(
            [int(archive["meta"][0]), int(archive["meta"][1]) + 17],
            dtype=np.int64,
        )
        np.savez(str(zone_path), **archive)
        loaded = Database.load(str(target))
        column = loaded.table("t").current().column("id")
        assert not column._zones  # dropped, rebuilds lazily at scan time
        sql = "SELECT count(*) FROM t WHERE id > 100"
        assert loaded.execute(sql).scalar() == db.execute(sql).scalar()

    def test_old_format_v1_image_still_loads(self, tmp_path):
        db = self._wide_db()
        target = tmp_path / "db"
        db.save(str(target))
        _downgrade_to_npz(target, 1)
        loaded = Database.load(str(target))
        sql = "SELECT * FROM t ORDER BY id"
        assert repr(loaded.execute(sql).rows()) == repr(db.execute(sql).rows())
        assert loaded.table_stats() == {}  # v1 carried no stats block

    def test_old_format_v3_image_still_loads(self, tmp_path, chain_db):
        chain_db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        chain_db.execute("ANALYZE")
        target = tmp_path / "db"
        chain_db.save(str(target))
        _downgrade_to_npz(target, 3)
        loaded = Database.load(str(target))
        assert loaded.execute("SELECT count(*) FROM edges").scalar() == 5
        assert loaded.table_stats()["edges"].row_count == 5
        assert loaded.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 5 OVER edges EDGE (s, d)"
        ).scalar() == 1

    def test_committed_v3_fixture_loads(self):
        import os

        fixture = os.path.join(
            os.path.dirname(__file__), "fixtures", "v3_image"
        )
        loaded = Database.load(fixture)
        assert loaded.execute(
            "SELECT s FROM people WHERE x IS NULL"
        ).rows() == [("carol",)]
        assert loaded.execute(
            "SELECT sum(x) FROM people"
        ).scalar() == 30
        assert loaded.table_stats()["people"].row_count == 3
        assert loaded.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 3 OVER hops EDGE (s, d)"
        ).scalar() == 2
