"""Save/load round trips for the database persistence layer."""

import datetime as dt

import pytest

from repro import Database
from repro.errors import ReproError


class TestRoundTrip:
    def test_all_types_survive(self, tmp_path):
        db = Database()
        db.executescript(
            """
            CREATE TABLE t (
                i INT, b BIGINT, f DOUBLE, s VARCHAR, day DATE, flag BOOLEAN
            );
            INSERT INTO t VALUES
                (1, 10000000000, 1.5, 'hello', '2020-05-17', TRUE),
                (2, -3, -0.25, '', '1970-01-01', FALSE);
            """
        )
        db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        assert loaded.execute("SELECT * FROM t ORDER BY i").rows() == [
            (1, 10000000000, 1.5, "hello", dt.date(2020, 5, 17), True),
            (2, -3, -0.25, "", dt.date(1970, 1, 1), False),
        ]

    def test_nulls_survive(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE t (x INT, s VARCHAR)")
        db.execute("INSERT INTO t VALUES (NULL, 'a'), (2, NULL)")
        db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        assert loaded.execute("SELECT * FROM t").rows() == [(None, "a"), (2, None)]

    def test_empty_table_survives(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE empty (x INT)")
        db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        assert loaded.execute("SELECT count(*) FROM empty").scalar() == 0

    def test_multiple_tables(self, tmp_path):
        db = Database()
        db.executescript(
            "CREATE TABLE a (x INT); CREATE TABLE b (y VARCHAR);"
            "INSERT INTO a VALUES (1); INSERT INTO b VALUES ('z')"
        )
        db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        assert loaded.catalog.table_names() == ["a", "b"]

    def test_graph_index_definitions_survive(self, tmp_path, chain_db):
        chain_db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        chain_db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        assert loaded.graph_indices.names() == ["gi"]
        assert loaded.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 5 OVER edges EDGE (s, d)"
        ).scalar() == 1

    def test_graph_queries_after_reload(self, tmp_path, social_db):
        social_db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        assert loaded.execute(
            "SELECT CHEAPEST SUM(1) "
            "WHERE ? REACHES ? OVER friends EDGE (person1, person2)",
            (933, 8333),
        ).scalar() == 2

    def test_save_overwrites_existing_directory(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        target = str(tmp_path / "db")
        db.save(target)
        db.execute("INSERT INTO t VALUES (1)")
        db.save(target)
        assert Database.load(target).execute("SELECT count(*) FROM t").scalar() == 1

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(ReproError, match="not a saved database"):
            Database.load(str(tmp_path / "nope"))

    def test_loaded_database_is_writable(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        loaded.execute("INSERT INTO t VALUES (5)")
        assert loaded.execute("SELECT x FROM t").rows() == [(5,)]
