"""Binder tests: name resolution, typing, aggregation rules, errors."""

import pytest

from repro import Database
from repro.errors import BindError, NotSupportedError
from repro.plan import Binder, BoundQuery, logical as lp
from repro.sql import parse_statement
from repro.storage import DataType


@pytest.fixture
def db():
    database = Database()
    database.executescript(
        """
        CREATE TABLE t (a INT, b VARCHAR, c DOUBLE);
        CREATE TABLE u (a INT, x VARCHAR);
        CREATE TABLE e (s INT, d INT, w INT);
        """
    )
    return database


def bind(db, sql) -> lp.LogicalNode:
    bound = Binder(db.catalog).bind_statement(parse_statement(sql))
    assert isinstance(bound, BoundQuery)
    return bound.plan


class TestResolution:
    def test_unknown_table(self, db):
        with pytest.raises(Exception):
            bind(db, "SELECT * FROM nope")

    def test_unknown_column(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT zz FROM t")

    def test_qualified_resolution(self, db):
        plan = bind(db, "SELECT t.a FROM t")
        assert plan.schema[0].name == "a"

    def test_ambiguous_unqualified(self, db):
        with pytest.raises(BindError, match="ambiguous"):
            bind(db, "SELECT a FROM t, u")

    def test_ambiguity_resolved_by_qualifier(self, db):
        plan = bind(db, "SELECT t.a, u.a FROM t, u")
        assert len(plan.schema) == 2

    def test_duplicate_alias_rejected(self, db):
        with pytest.raises(BindError, match="duplicate"):
            bind(db, "SELECT 1 FROM t x, u x")

    def test_alias_hides_table_name(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT t.a FROM t AS renamed")

    def test_star_expansion_order(self, db):
        plan = bind(db, "SELECT * FROM t")
        assert [c.name for c in plan.schema] == ["a", "b", "c"]

    def test_qualified_star(self, db):
        plan = bind(db, "SELECT u.* FROM t, u")
        assert [c.name for c in plan.schema] == ["a", "x"]

    def test_select_star_without_from_raises(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT *")

    def test_derived_table_columns(self, db):
        plan = bind(db, "SELECT d.total FROM (SELECT a AS total FROM t) d")
        assert plan.schema[0].name == "total"

    def test_derived_table_column_aliases(self, db):
        plan = bind(db, "SELECT d.x2 FROM (SELECT a, b FROM t) d (x1, x2)")
        assert plan.schema[0].name == "x2"

    def test_derived_alias_arity_mismatch(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT 1 FROM (SELECT a FROM t) d (x, y)")


class TestTyping:
    def test_output_types(self, db):
        plan = bind(db, "SELECT a, b, c FROM t")
        assert [c.type for c in plan.schema] == [
            DataType.INTEGER,
            DataType.VARCHAR,
            DataType.DOUBLE,
        ]

    def test_arithmetic_promotes(self, db):
        plan = bind(db, "SELECT a + c FROM t")
        assert plan.schema[0].type == DataType.DOUBLE

    def test_division_always_double(self, db):
        plan = bind(db, "SELECT a / a FROM t")
        assert plan.schema[0].type == DataType.DOUBLE

    def test_concat_is_varchar(self, db):
        plan = bind(db, "SELECT b || b FROM t")
        assert plan.schema[0].type == DataType.VARCHAR

    def test_comparison_is_boolean(self, db):
        plan = bind(db, "SELECT a > 1 FROM t")
        assert plan.schema[0].type == DataType.BOOLEAN

    def test_arith_on_varchar_raises(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT b + 1 FROM t")

    def test_compare_varchar_int_raises(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT * FROM t WHERE b > 1")

    def test_where_must_be_boolean(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT * FROM t WHERE a + 1")

    def test_cast_result_type(self, db):
        plan = bind(db, "SELECT CAST(a AS double) FROM t")
        assert plan.schema[0].type == DataType.DOUBLE

    def test_case_promotes_result(self, db):
        plan = bind(db, "SELECT CASE WHEN a > 0 THEN a ELSE c END FROM t")
        assert plan.schema[0].type == DataType.DOUBLE


class TestAggregation:
    def test_count_star_type(self, db):
        plan = bind(db, "SELECT count(*) FROM t")
        assert plan.schema[0].type == DataType.BIGINT

    def test_avg_is_double(self, db):
        plan = bind(db, "SELECT avg(a) FROM t")
        assert plan.schema[0].type == DataType.DOUBLE

    def test_min_keeps_type(self, db):
        plan = bind(db, "SELECT min(b) FROM t")
        assert plan.schema[0].type == DataType.VARCHAR

    def test_ungrouped_column_rejected(self, db):
        with pytest.raises(BindError, match="GROUP BY"):
            bind(db, "SELECT a, count(*) FROM t GROUP BY b")

    def test_group_key_allowed(self, db):
        bind(db, "SELECT b, count(*) FROM t GROUP BY b")

    def test_expression_over_group_key(self, db):
        bind(db, "SELECT b || 'x', count(*) FROM t GROUP BY b")

    def test_nested_aggregate_rejected(self, db):
        with pytest.raises(BindError, match="nested"):
            bind(db, "SELECT sum(count(*)) FROM t")

    def test_sum_of_varchar_rejected(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT sum(b) FROM t")

    def test_having_without_group_rejected(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT a FROM t HAVING a > 1")

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT a FROM t WHERE count(*) > 1")

    def test_count_distinct(self, db):
        plan = bind(db, "SELECT count(DISTINCT a) FROM t")
        assert isinstance(plan, lp.LProject)


class TestOrderBy:
    def test_positional(self, db):
        plan = bind(db, "SELECT a, b FROM t ORDER BY 2")
        assert isinstance(plan, lp.LSort)

    def test_positional_out_of_range(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT a FROM t ORDER BY 3")

    def test_alias_reference(self, db):
        bind(db, "SELECT a AS q FROM t ORDER BY q")

    def test_order_by_non_output_column_uses_hidden_sort_key(self, db):
        # standard SQL: ORDER BY may reference input columns; they are
        # carried as hidden sort columns and projected away
        plan = bind(db, "SELECT b FROM t ORDER BY a")
        assert [c.name for c in plan.schema] == ["b"]

    def test_order_by_hidden_rejected_under_distinct(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT DISTINCT b FROM t ORDER BY a")

    def test_order_by_hidden_rejected_under_group_by(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT b FROM t GROUP BY b ORDER BY a")


class TestSetOps:
    def test_arity_mismatch(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT a FROM t UNION SELECT a, b FROM t")

    def test_type_promotion_across_union(self, db):
        plan = bind(db, "SELECT a FROM t UNION SELECT c FROM t")
        assert plan.schema[0].type == DataType.DOUBLE

    def test_incompatible_union_types(self, db):
        with pytest.raises(Exception):
            bind(db, "SELECT a FROM t UNION SELECT b FROM t")

    def test_except_all_not_supported(self, db):
        with pytest.raises(NotSupportedError):
            bind(db, "SELECT a FROM t EXCEPT ALL SELECT a FROM t")


class TestSubqueries:
    def test_scalar_subquery_single_column(self, db):
        bind(db, "SELECT (SELECT max(a) FROM t) FROM u")

    def test_scalar_subquery_multi_column_rejected(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT (SELECT a, b FROM t) FROM u")

    def test_in_subquery_single_column(self, db):
        bind(db, "SELECT * FROM u WHERE a IN (SELECT a FROM t)")

    def test_in_subquery_multi_column_rejected(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT * FROM u WHERE a IN (SELECT a, b FROM t)")


class TestCtes:
    def test_cte_shadows_table(self, db):
        plan = bind(db, "WITH t AS (SELECT 1 AS only) SELECT * FROM t")
        assert [c.name for c in plan.schema] == ["only"]

    def test_cte_column_rename(self, db):
        plan = bind(db, "WITH c (x) AS (SELECT a FROM t) SELECT x FROM c")
        assert plan.schema[0].name == "x"

    def test_cte_column_arity_mismatch(self, db):
        with pytest.raises(BindError):
            bind(db, "WITH c (x, y) AS (SELECT a FROM t) SELECT * FROM c")

    def test_recursive_requires_union(self, db):
        with pytest.raises(BindError):
            bind(
                db,
                "WITH RECURSIVE r(n) AS (SELECT n + 1 FROM r) SELECT * FROM r",
            )

    def test_recursive_arity_mismatch(self, db):
        with pytest.raises(BindError):
            bind(
                db,
                "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL SELECT n, 2 FROM r) "
                "SELECT * FROM r",
            )

    def test_two_references_to_one_cte_get_distinct_ids(self, db):
        plan = bind(db, "WITH c AS (SELECT a FROM t) SELECT x.a, y.a FROM c x, c y")
        assert plan.schema[0].col_id != plan.schema[1].col_id
