"""Client retry policy against a scripted flaky server.

A minimal in-process fake speaks just enough of the length-prefixed
frame protocol to script failure shapes per connection: respond OK,
respond BACKPRESSURE, or drop the connection without answering.  The
tests pin down the retry matrix:

* backpressure  → retried for any statement (bounded, with backoff);
* dropped mid-request → retried only for idempotent reads, never for
  DML, and never inside an open transaction;
* connect/reconnect failure → retried for anything (nothing was sent).
"""

import socket
import threading
import time

import pytest

from repro.client import Client
from repro.errors import BackpressureError, ProtocolError
from repro.server.protocol import HEADER, decode_payload, encode_frame, frame_length


class FakeServer:
    """One scripted action list per accepted connection.

    Actions: ``"ok"`` (count result), ``"rows"`` (one-row result),
    ``"backpressure"`` (typed error), ``"drop"`` (read the request,
    close without responding).
    """

    def __init__(self, script):
        self.script = [list(actions) for actions in script]
        self.requests = []
        self.connections = 0
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while self.script:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            actions = self.script.pop(0)
            try:
                for action in actions:
                    request = self._read(conn)
                    if request is None:
                        break
                    self.requests.append(request)
                    if action == "drop":
                        break
                    conn.sendall(encode_frame(self._payload(action)))
            finally:
                conn.close()

    @staticmethod
    def _payload(action):
        if action == "backpressure":
            return {
                "ok": False,
                "error": {"code": "BACKPRESSURE", "message": "queue full"},
            }
        if action == "rows":
            return {
                "ok": True,
                "kind": "rows",
                "columns": ["v"],
                "rows": [[1]],
            }
        return {"ok": True, "kind": "count", "rowcount": 1}

    @staticmethod
    def _read(conn):
        try:
            header = b""
            while len(header) < HEADER.size:
                chunk = conn.recv(HEADER.size - len(header))
                if not chunk:
                    return None
                header += chunk
            need = frame_length(header)
            payload = b""
            while len(payload) < need:
                chunk = conn.recv(need - len(payload))
                if not chunk:
                    return None
                payload += chunk
            return decode_payload(payload)
        except OSError:
            return None

    def close(self):
        try:
            self._listener.close()
        except OSError:
            pass


@pytest.fixture
def make_server():
    servers = []

    def factory(script):
        server = FakeServer(script)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.close()


def make_client(server, **kwargs):
    kwargs.setdefault("timeout", 5)
    kwargs.setdefault("backoff", 0.001)
    return Client("127.0.0.1", server.port, **kwargs)


class TestBackpressureRetry:
    def test_retries_until_success(self, make_server):
        server = make_server([["backpressure", "backpressure", "ok"]])
        with make_client(server, retries=3) as client:
            result = client.execute("INSERT INTO t VALUES (1)")
        assert result.rowcount == 1
        assert len(server.requests) == 3  # original + 2 retries

    def test_bounded_budget_then_raises(self, make_server):
        server = make_server([["backpressure"] * 3])
        with make_client(server, retries=1) as client:
            with pytest.raises(BackpressureError):
                client.execute("SELECT 1")
        assert len(server.requests) == 2  # original + 1 retry, then give up

    def test_no_retry_by_default(self, make_server):
        server = make_server([["backpressure", "ok"]])
        with make_client(server) as client:
            with pytest.raises(BackpressureError):
                client.execute("SELECT 1")
        assert len(server.requests) == 1

    def test_backoff_sleeps_between_attempts(self, make_server, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep", lambda s: sleeps.append(s))
        server = make_server([["backpressure", "backpressure", "ok"]])
        with make_client(server, retries=2, backoff=0.1) as client:
            client.execute("SELECT 1")
        assert len(sleeps) == 2
        # exponential with 0.5-1.0 jitter: attempt n in [base/2, base]
        assert 0.05 <= sleeps[0] <= 0.1
        assert 0.1 <= sleeps[1] <= 0.2


class TestDisconnectRetry:
    def test_idempotent_select_reconnects_and_retries(self, make_server):
        server = make_server([["drop"], ["rows"]])
        with make_client(server, retries=2) as client:
            result = client.execute("SELECT v FROM t")
        assert result.rows() == [(1,)]
        assert server.connections == 2

    def test_dml_is_never_retried_after_ambiguous_drop(self, make_server):
        server = make_server([["drop"], ["ok"]])
        with make_client(server, retries=5) as client:
            with pytest.raises(ProtocolError, match="lost"):
                client.execute("INSERT INTO t VALUES (1)")
        assert server.connections == 1  # no reconnect attempt
        assert len(server.requests) == 1

    def test_no_retry_inside_open_transaction(self, make_server):
        server = make_server([["ok", "drop"], ["rows"]])
        with make_client(server, retries=5) as client:
            client.execute("BEGIN")
            with pytest.raises(ProtocolError):
                client.execute("SELECT v FROM t")
        assert server.connections == 1

    def test_select_after_commit_is_retryable_again(self, make_server):
        server = make_server([["ok", "ok", "ok", "drop"], ["rows"]])
        with make_client(server, retries=2) as client:
            client.execute("BEGIN")
            client.execute("INSERT INTO t VALUES (1)")
            client.execute("COMMIT")
            result = client.execute("SELECT v FROM t")
        assert result.rows() == [(1,)]
        assert server.connections == 2

    def test_user_closed_client_never_reconnects(self, make_server):
        server = make_server([["ok"], ["rows"]])
        client = make_client(server, retries=5)
        client.execute("VALUES (1)")
        client.close()
        with pytest.raises(ProtocolError, match="closed"):
            client.execute("SELECT 1")
        assert server.connections == 1


class TestConnectRetry:
    def test_initial_connect_retries_through_refusals(self, monkeypatch):
        real_create = socket.create_connection
        failures = {"left": 2}
        server = FakeServer([["ok"]])

        def flaky(address, **kwargs):
            if failures["left"]:
                failures["left"] -= 1
                raise ConnectionRefusedError("scripted refusal")
            return real_create(address, **kwargs)

        monkeypatch.setattr(
            "repro.client.socket.create_connection", flaky
        )
        try:
            with Client(
                "127.0.0.1", server.port, retries=3, backoff=0.001
            ) as client:
                assert client.execute("SELECT 1").rowcount == 1
        finally:
            server.close()

    def test_initial_connect_budget_exhausted_raises_oserror(
        self, monkeypatch
    ):
        sleeps = []
        monkeypatch.setattr(time, "sleep", lambda s: sleeps.append(s))

        def refuse(address, **kwargs):
            raise ConnectionRefusedError("nobody home")

        monkeypatch.setattr(
            "repro.client.socket.create_connection", refuse
        )
        with pytest.raises(OSError):
            Client("127.0.0.1", 1, retries=2, backoff=0.001)
        assert len(sleeps) == 2

    def test_reconnect_failure_is_retried_even_for_dml(
        self, make_server, monkeypatch
    ):
        # the drop kills the connection *after* the INSERT executed —
        # ambiguous, so the client must surface it.  But if the next
        # attempt cannot even connect, that attempt was never sent and
        # burning a retry on the reconnect is safe for any statement.
        server = make_server([["rows"], ["rows"]])
        client = make_client(server, retries=3)
        client._drop()  # simulate a lost connection, request never sent
        result = client.execute("SELECT v FROM t")
        assert result.rows() == [(1,)]
        client.close()
