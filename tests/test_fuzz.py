"""Grammar fuzzing: randomly generated valid queries must never crash the
engine with anything but a declared ReproError, and structural
invariants (LIMIT bounds, DISTINCT uniqueness, filter subsetting) hold.
"""

import random

import pytest

from repro import Database, ReproError


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.executescript(
        """
        CREATE TABLE t1 (a INT, b VARCHAR, c DOUBLE);
        CREATE TABLE t2 (a INT, d INT);
        CREATE TABLE e (s INT, d INT, w INT);
        INSERT INTO t1 VALUES
            (1, 'x', 0.5), (2, 'y', 1.5), (3, NULL, 2.5), (NULL, 'z', NULL);
        INSERT INTO t2 VALUES (1, 10), (2, 20), (5, 50);
        INSERT INTO e VALUES (1, 2, 1), (2, 3, 2), (3, 1, 3), (2, 5, 1);
        """
    )
    return database


def random_scalar(rng):
    return rng.choice(
        ["a", "c", "a + 1", "c * 2", "abs(a)", "coalesce(a, 0)", "length(b)",
         "a % 2", "-a", "CASE WHEN a > 1 THEN a ELSE 0 END"]
    )


def random_predicate(rng):
    return rng.choice(
        ["a > 1", "a = 2", "b IS NOT NULL", "c BETWEEN 0.0 AND 2.0",
         "a IN (1, 3)", "b LIKE '%y%'", "a > 1 AND c < 3.0",
         "a = 1 OR a = 3", "NOT a = 2", "a IN (SELECT a FROM t2)"]
    )


def random_endpoint(rng):
    return rng.choice(["0", "1", "2", "3", "5", "6", "NULL", "a", "t1.a"])


def random_cheapest(rng):
    """A CHEAPEST SUM item and the matching OVER clause binding."""
    return rng.choice(
        [
            ("CHEAPEST SUM(1)", "OVER e EDGE (s, d)"),
            ("CHEAPEST SUM(k: w)", "OVER e k EDGE (s, d)"),
            ("CHEAPEST SUM(k: w + 1)", "OVER e k EDGE (s, d)"),
            ("CHEAPEST SUM(k: 1)", "OVER e k EDGE (s, d)"),
        ]
    )


def random_graph_query(rng) -> str:
    """A REACHES/CHEAPEST SUM query in one of the engine's shapes."""
    shape = rng.random()
    src, dst = random_endpoint(rng), random_endpoint(rng)
    cheapest, over = random_cheapest(rng)
    if shape < 0.35:
        # constant-pair form (FROM-less graph select)
        src, dst = rng.randint(0, 6), rng.randint(0, 6)
        return f"SELECT {cheapest} WHERE {src} REACHES {dst} {over}"
    if shape < 0.6:
        # graph select over a base-table input
        query = f"SELECT a, {cheapest} FROM t1 WHERE {src} REACHES {dst} {over}"
        if rng.random() < 0.4:
            query += " ORDER BY 1"
        return query
    if shape < 0.8:
        # batch form: VALUES-driven pairs (the Fig. 1b pattern)
        pairs = ", ".join(
            f"({rng.randint(0, 6)}, {rng.randint(0, 6)})" for _ in range(rng.randint(1, 6))
        )
        return (
            f"SELECT p.src, p.dst, {cheapest} FROM (VALUES {pairs}) p (src, dst) "
            f"WHERE p.src REACHES p.dst {over}"
        )
    # path-producing form flattened by UNNEST
    src, dst = rng.randint(0, 6), rng.randint(0, 6)
    ordinality = " WITH ORDINALITY" if rng.random() < 0.5 else ""
    return (
        f"SELECT T.c, R.s, R.d FROM ("
        f"SELECT CHEAPEST SUM(k: w) AS (c, p) "
        f"WHERE {src} REACHES {dst} OVER e k EDGE (s, d)) T, "
        f"UNNEST(T.p){ordinality} AS R"
    )


def random_query(rng) -> str:
    parts = [f"SELECT {random_scalar(rng)} AS v1, {random_scalar(rng)} AS v2"]
    parts.append("FROM t1")
    if rng.random() < 0.3:
        parts.append("JOIN t2 ON t1.a = t2.a")
    if rng.random() < 0.7:
        parts.append(f"WHERE {random_predicate(rng)}")
    if rng.random() < 0.3:
        parts.append("ORDER BY 1")
    if rng.random() < 0.3:
        parts.append(f"LIMIT {rng.randint(0, 5)}")
    return " ".join(parts)


class TestFuzz:
    def test_random_queries_do_not_crash(self, db):
        rng = random.Random(1234)
        executed = 0
        for _ in range(300):
            sql = random_query(rng)
            try:
                db.execute(sql)
            except ReproError:
                pass  # declared failure modes are fine
            executed += 1
        assert executed == 300

    def test_limit_always_respected(self, db):
        rng = random.Random(99)
        for _ in range(50):
            limit = rng.randint(0, 4)
            sql = f"SELECT a FROM t1 WHERE {random_predicate(rng)} LIMIT {limit}"
            try:
                rows = db.execute(sql).rows()
            except ReproError:
                continue
            assert len(rows) <= limit

    def test_distinct_yields_unique_rows(self, db):
        rng = random.Random(7)
        for _ in range(50):
            sql = f"SELECT DISTINCT {random_scalar(rng)} FROM t1"
            rows = db.execute(sql).rows()
            assert len(rows) == len(set(rows))

    def test_where_results_subset_unfiltered(self, db):
        rng = random.Random(5)
        everything = set(db.execute("SELECT a, b FROM t1").rows())
        for _ in range(40):
            sql = f"SELECT a, b FROM t1 WHERE {random_predicate(rng)}"
            try:
                rows = db.execute(sql).rows()
            except ReproError:
                continue
            assert set(rows) <= everything

    def test_random_graph_queries(self, db):
        rng = random.Random(11)
        for _ in range(60):
            source = rng.randint(0, 6)
            dest = rng.randint(0, 6)
            cost = db.execute(
                "SELECT CHEAPEST SUM(k: w) "
                "WHERE ? REACHES ? OVER e k EDGE (s, d)",
                (source, dest),
            ).rows()
            hops = db.execute(
                "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)",
                (source, dest),
            ).rows()
            # weighted and unweighted agree on *connectivity*
            assert bool(cost) == bool(hops)
            if cost:
                assert cost[0][0] >= hops[0][0]  # weights are >= 1

    def test_union_of_random_queries(self, db):
        rng = random.Random(3)
        for _ in range(30):
            q1 = f"SELECT a FROM t1 WHERE {random_predicate(rng)}"
            q2 = f"SELECT a FROM t2"
            try:
                rows = db.execute(f"{q1} UNION {q2}").rows()
            except ReproError:
                continue
            assert len(rows) == len(set(rows))


class TestGraphGrammarFuzz:
    """REACHES / CHEAPEST SUM / UNNEST clauses generated, not hand-picked."""

    def test_random_graph_grammar_does_not_crash(self, db):
        rng = random.Random(4242)
        executed = 0
        for _ in range(200):
            sql = random_graph_query(rng)
            try:
                db.execute(sql)
            except ReproError:
                pass  # declared failure modes are fine
            executed += 1
        assert executed == 200

    def test_weighted_cost_dominates_hop_count(self, db):
        # for any generated pair, SUM(k: w) >= SUM(1) when both connect
        # (all weights in `e` are >= 1)
        rng = random.Random(77)
        for _ in range(60):
            source, dest = rng.randint(0, 6), rng.randint(0, 6)
            weighted = db.execute(
                "SELECT CHEAPEST SUM(k: w) WHERE ? REACHES ? OVER e k EDGE (s, d)",
                (source, dest),
            ).rows()
            hops = db.execute(
                "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)",
                (source, dest),
            ).rows()
            assert bool(weighted) == bool(hops)
            if weighted:
                assert weighted[0][0] >= hops[0][0]

    def test_unnest_path_chains_and_matches_cost(self, db):
        # every UNNESTed path is a valid edge chain whose length is the
        # reported hop count
        rng = random.Random(55)
        for _ in range(40):
            source, dest = rng.randint(0, 6), rng.randint(0, 6)
            header = db.execute(
                "SELECT CHEAPEST SUM(1) AS (c, p) "
                "WHERE ? REACHES ? OVER e EDGE (s, d)",
                (source, dest),
            ).rows()
            flattened = db.execute(
                "SELECT R.s, R.d FROM ("
                "SELECT CHEAPEST SUM(1) AS (c, p) "
                "WHERE ? REACHES ? OVER e EDGE (s, d)) T, "
                "UNNEST(T.p) AS R",
                (source, dest),
            ).rows()
            if not header:
                assert flattened == []
                continue
            hops = header[0][0]
            assert len(flattened) == hops
            if flattened:
                assert flattened[0][0] == source
                assert flattened[-1][1] == dest
                for (_, mid), (nxt, _) in zip(flattened, flattened[1:]):
                    assert mid == nxt

    def test_graph_batch_results_subset_input_pairs(self, db):
        rng = random.Random(21)
        for _ in range(30):
            pairs = [
                (rng.randint(0, 6), rng.randint(0, 6)) for _ in range(rng.randint(1, 5))
            ]
            values = ", ".join(f"({a}, {b})" for a, b in pairs)
            rows = db.execute(
                f"SELECT p.src, p.dst FROM (VALUES {values}) p (src, dst) "
                f"WHERE p.src REACHES p.dst OVER e EDGE (s, d)"
            ).rows()
            assert set(rows) <= set(pairs)
