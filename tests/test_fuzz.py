"""Grammar fuzzing: randomly generated valid queries must never crash the
engine with anything but a declared ReproError, and structural
invariants (LIMIT bounds, DISTINCT uniqueness, filter subsetting) hold.
"""

import random

import pytest

from repro import Database, ReproError


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.executescript(
        """
        CREATE TABLE t1 (a INT, b VARCHAR, c DOUBLE);
        CREATE TABLE t2 (a INT, d INT);
        CREATE TABLE e (s INT, d INT, w INT);
        INSERT INTO t1 VALUES
            (1, 'x', 0.5), (2, 'y', 1.5), (3, NULL, 2.5), (NULL, 'z', NULL);
        INSERT INTO t2 VALUES (1, 10), (2, 20), (5, 50);
        INSERT INTO e VALUES (1, 2, 1), (2, 3, 2), (3, 1, 3), (2, 5, 1);
        """
    )
    return database


def random_scalar(rng):
    return rng.choice(
        ["a", "c", "a + 1", "c * 2", "abs(a)", "coalesce(a, 0)", "length(b)",
         "a % 2", "-a", "CASE WHEN a > 1 THEN a ELSE 0 END"]
    )


def random_predicate(rng):
    return rng.choice(
        ["a > 1", "a = 2", "b IS NOT NULL", "c BETWEEN 0.0 AND 2.0",
         "a IN (1, 3)", "b LIKE '%y%'", "a > 1 AND c < 3.0",
         "a = 1 OR a = 3", "NOT a = 2", "a IN (SELECT a FROM t2)"]
    )


def random_query(rng) -> str:
    parts = [f"SELECT {random_scalar(rng)} AS v1, {random_scalar(rng)} AS v2"]
    parts.append("FROM t1")
    if rng.random() < 0.3:
        parts.append("JOIN t2 ON t1.a = t2.a")
    if rng.random() < 0.7:
        parts.append(f"WHERE {random_predicate(rng)}")
    if rng.random() < 0.3:
        parts.append("ORDER BY 1")
    if rng.random() < 0.3:
        parts.append(f"LIMIT {rng.randint(0, 5)}")
    return " ".join(parts)


class TestFuzz:
    def test_random_queries_do_not_crash(self, db):
        rng = random.Random(1234)
        executed = 0
        for _ in range(300):
            sql = random_query(rng)
            try:
                db.execute(sql)
            except ReproError:
                pass  # declared failure modes are fine
            executed += 1
        assert executed == 300

    def test_limit_always_respected(self, db):
        rng = random.Random(99)
        for _ in range(50):
            limit = rng.randint(0, 4)
            sql = f"SELECT a FROM t1 WHERE {random_predicate(rng)} LIMIT {limit}"
            try:
                rows = db.execute(sql).rows()
            except ReproError:
                continue
            assert len(rows) <= limit

    def test_distinct_yields_unique_rows(self, db):
        rng = random.Random(7)
        for _ in range(50):
            sql = f"SELECT DISTINCT {random_scalar(rng)} FROM t1"
            rows = db.execute(sql).rows()
            assert len(rows) == len(set(rows))

    def test_where_results_subset_unfiltered(self, db):
        rng = random.Random(5)
        everything = set(db.execute("SELECT a, b FROM t1").rows())
        for _ in range(40):
            sql = f"SELECT a, b FROM t1 WHERE {random_predicate(rng)}"
            try:
                rows = db.execute(sql).rows()
            except ReproError:
                continue
            assert set(rows) <= everything

    def test_random_graph_queries(self, db):
        rng = random.Random(11)
        for _ in range(60):
            source = rng.randint(0, 6)
            dest = rng.randint(0, 6)
            cost = db.execute(
                "SELECT CHEAPEST SUM(k: w) "
                "WHERE ? REACHES ? OVER e k EDGE (s, d)",
                (source, dest),
            ).rows()
            hops = db.execute(
                "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)",
                (source, dest),
            ).rows()
            # weighted and unweighted agree on *connectivity*
            assert bool(cost) == bool(hops)
            if cost:
                assert cost[0][0] >= hops[0][0]  # weights are >= 1

    def test_union_of_random_queries(self, db):
        rng = random.Random(3)
        for _ in range(30):
            q1 = f"SELECT a FROM t1 WHERE {random_predicate(rng)}"
            q2 = f"SELECT a FROM t2"
            try:
                rows = db.execute(f"{q1} UNION {q2}").rows()
            except ReproError:
                continue
            assert len(rows) == len(set(rows))
