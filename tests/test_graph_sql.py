"""End-to-end SQL tests of the extension: REACHES, CHEAPEST SUM, and the
paper's appendix examples, verified against the result tables it prints."""

import pytest

from repro import Database
from repro.errors import GraphRuntimeError


class TestReachesFilter:
    def test_filter_semantics(self, chain_db):
        chain_db.execute("CREATE TABLE nodes (v INT)")
        chain_db.execute("INSERT INTO nodes VALUES (1), (2), (3), (4), (5), (99)")
        rows = chain_db.execute(
            "SELECT v FROM nodes WHERE 2 REACHES v OVER edges EDGE (s, d) ORDER BY v"
        ).rows()
        # 2 reaches itself (empty path), 3, 4, 5; 99 is not a vertex
        assert rows == [(2,), (3,), (4,), (5,)]

    def test_join_semantics(self, chain_db):
        chain_db.execute("CREATE TABLE a (v INT)")
        chain_db.execute("CREATE TABLE b (v INT)")
        chain_db.execute("INSERT INTO a VALUES (1), (4)")
        chain_db.execute("INSERT INTO b VALUES (3), (5)")
        rows = chain_db.execute(
            "SELECT a.v, b.v FROM a, b WHERE a.v REACHES b.v OVER edges EDGE (s, d) "
            "ORDER BY 1, 2"
        ).rows()
        assert rows == [(1, 3), (1, 5), (4, 5)]

    def test_reachability_only_runs_bfs_and_discards_paths(self, chain_db):
        rows = chain_db.execute(
            "SELECT 1 WHERE 1 REACHES 5 OVER edges EDGE (s, d)"
        ).rows()
        assert rows == [(1,)]

    def test_unreachable_filters_out(self, chain_db):
        rows = chain_db.execute(
            "SELECT 1 WHERE 5 REACHES 1 OVER edges EDGE (s, d)"
        ).rows()
        assert rows == []

    def test_edge_direction_respected(self, chain_db):
        assert chain_db.execute(
            "SELECT 1 WHERE 2 REACHES 1 OVER edges EDGE (s, d)"
        ).rows() == []
        # reversing the EDGE clause reverses the graph
        assert chain_db.execute(
            "SELECT 1 WHERE 2 REACHES 1 OVER edges EDGE (d, s)"
        ).rows() == [(1,)]

    def test_null_endpoint_never_reaches(self, chain_db):
        chain_db.execute("CREATE TABLE n (v INT)")
        chain_db.execute("INSERT INTO n VALUES (NULL), (1)")
        rows = chain_db.execute(
            "SELECT v FROM n WHERE v REACHES 5 OVER edges EDGE (s, d)"
        ).rows()
        assert rows == [(1,)]

    def test_edges_with_null_endpoints_ignored(self, chain_db):
        chain_db.execute("INSERT INTO edges VALUES (5, NULL, 1), (NULL, 1, 1)")
        rows = chain_db.execute(
            "SELECT 1 WHERE 1 REACHES 5 OVER edges EDGE (s, d)"
        ).rows()
        assert rows == [(1,)]


class TestCheapestSum:
    def test_unweighted_hop_count(self, chain_db):
        assert chain_db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 4 OVER edges EDGE (s, d)"
        ).scalar() == 3

    def test_unweighted_takes_shortcut(self, chain_db):
        # hops: direct 1->5 edge wins over the 4-hop chain
        assert chain_db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 5 OVER edges EDGE (s, d)"
        ).scalar() == 1

    def test_weighted_avoids_heavy_shortcut(self, chain_db):
        # weights: chain costs 4, shortcut costs 10
        assert chain_db.execute(
            "SELECT CHEAPEST SUM(e: w) WHERE 1 REACHES 5 OVER edges e EDGE (s, d)"
        ).scalar() == 4

    def test_weight_expression_scales_cost(self, chain_db):
        assert chain_db.execute(
            "SELECT CHEAPEST SUM(e: w * 3) WHERE 1 REACHES 5 OVER edges e EDGE (s, d)"
        ).scalar() == 12

    def test_float_weights(self, chain_db):
        cost = chain_db.execute(
            "SELECT CHEAPEST SUM(e: w * 0.5) WHERE 1 REACHES 4 OVER edges e EDGE (s, d)"
        ).scalar()
        assert cost == pytest.approx(1.5)

    def test_zero_weight_raises_at_runtime(self, chain_db):
        with pytest.raises(GraphRuntimeError, match="strictly greater"):
            chain_db.execute(
                "SELECT CHEAPEST SUM(e: w - 1) WHERE 1 REACHES 5 OVER edges e EDGE (s, d)"
            )

    def test_cost_to_self_is_zero(self, chain_db):
        assert chain_db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 3 REACHES 3 OVER edges EDGE (s, d)"
        ).scalar() == 0

    def test_cost_and_path_pair(self, chain_db):
        rows = chain_db.execute(
            "SELECT CHEAPEST SUM(e: w) AS (cost, path) "
            "WHERE 1 REACHES 5 OVER edges e EDGE (s, d)"
        ).rows()
        cost, path = rows[0]
        assert cost == 4
        assert [r[:2] for r in path.to_rows()] == [(1, 2), (2, 3), (3, 4), (4, 5)]

    def test_two_cheapest_sums_same_predicate(self, chain_db):
        rows = chain_db.execute(
            "SELECT CHEAPEST SUM(e: 1) AS hops, CHEAPEST SUM(e: w) AS wcost "
            "WHERE 1 REACHES 5 OVER edges e EDGE (s, d)"
        ).rows()
        assert rows == [(1, 4)]

    def test_multiple_reaches_with_bindings(self, chain_db):
        # two independent predicates over differently-oriented graphs;
        # each CHEAPEST SUM binds to its own edge table variable
        rows = chain_db.execute(
            "SELECT CHEAPEST SUM(f: 1) AS forward, CHEAPEST SUM(b: w) AS backward "
            "WHERE 1 REACHES 5 OVER edges f EDGE (s, d) "
            "AND 5 REACHES 1 OVER edges b EDGE (d, s)"
        ).rows()
        # forward: the direct shortcut is 1 hop; backward (reversed,
        # weighted): the chain costs 4 vs the w=10 reversed shortcut
        assert rows == [(1, 4)]

    def test_edge_over_subquery(self, chain_db):
        # exclude the shortcut edge via a derived edge table
        assert chain_db.execute(
            "SELECT CHEAPEST SUM(f: 1) "
            "WHERE 1 REACHES 5 OVER (SELECT * FROM edges WHERE w < 10) f EDGE (s, d)"
        ).scalar() == 4

    def test_graph_join_with_cost(self, chain_db):
        chain_db.execute("CREATE TABLE src (v INT)")
        chain_db.execute("CREATE TABLE dst (v INT)")
        chain_db.execute("INSERT INTO src VALUES (1), (2)")
        chain_db.execute("INSERT INTO dst VALUES (4), (5)")
        rows = chain_db.execute(
            "SELECT s.v, t.v, CHEAPEST SUM(e: w) AS c FROM src s, dst t "
            "WHERE s.v REACHES t.v OVER edges e EDGE (s, d) ORDER BY 1, 2"
        ).rows()
        assert rows == [(1, 4, 3), (1, 5, 4), (2, 4, 2), (2, 5, 3)]

    def test_graph_join_with_paths(self, chain_db):
        chain_db.execute("CREATE TABLE src (v INT)")
        chain_db.execute("INSERT INTO src VALUES (1)")
        rows = chain_db.execute(
            "SELECT s.v, CHEAPEST SUM(e: w) AS (c, p) FROM src s "
            "WHERE s.v REACHES 5 OVER edges e EDGE (s, d)"
        ).rows()
        v, cost, path = rows[0]
        assert cost == 4 and len(path) == 4


class TestAppendixExamples:
    """The worked examples of Appendix A with their printed result sets."""

    def test_a1_cost_only(self, social_db):
        assert social_db.execute(
            "SELECT CHEAPEST SUM(1) "
            "WHERE ? REACHES ? OVER friends EDGE (person1, person2)",
            (933, 8333),
        ).scalar() == 2

    def test_a2_vertex_properties(self, social_db):
        rows = social_db.execute(
            """
            SELECT p1.firstName || ' ' || p1.lastName AS person1,
                   p2.firstName || ' ' || p2.lastName AS person2,
                   CHEAPEST SUM(1) AS distance
            FROM persons p1, persons p2
            WHERE p1.id = ? AND p2.id = ?
              AND p1.id REACHES p2.id OVER friends EDGE (person1, person2)
            """,
            (933, 8333),
        ).rows()
        assert rows == [("Mahinda Perera", "Chen Wang", 2)]

    def test_a3_reachability_over_cte_subgraph(self, social_db):
        rows = social_db.execute(
            """
            WITH friends1 AS (
                SELECT * FROM friends WHERE creationDate < '2011-01-01'
            )
            SELECT firstName || ' ' || lastName AS person
            FROM persons
            WHERE ? REACHES id OVER friends1 EDGE (person1, person2)
            """,
            (933,),
        ).rows()
        assert rows == [("Mahinda Perera",), ("Carmen Lepland",), ("Chen Wang",)]

    def test_a4_weighted_paths(self, social_db):
        rows = social_db.execute(
            """
            WITH friends1 AS (
                SELECT * FROM friends WHERE creationDate < '2011-01-01'
            )
            SELECT firstName || ' ' || lastName AS person,
                   CHEAPEST SUM(f: CAST(weight * 2 AS int)) AS (cost, path)
            FROM persons
            WHERE ? REACHES id OVER friends1 f EDGE (person1, person2)
            """,
            (933,),
        ).rows()
        by_person = {person: (cost, path) for person, cost, path in rows}
        assert by_person["Mahinda Perera"][0] == 0
        assert by_person["Mahinda Perera"][1].is_empty
        assert by_person["Carmen Lepland"][0] == 1
        assert by_person["Chen Wang"][0] == 5
        assert len(by_person["Chen Wang"][1]) == 2

    def test_a4_unnested(self, social_db):
        rows = social_db.execute(
            """
            SELECT T.person, T.cost, R.person1, R.person2, R.weight
            FROM (
                WITH friends1 AS (
                    SELECT * FROM friends WHERE creationDate < '2011-01-01'
                )
                SELECT firstName || ' ' || lastName AS person,
                       CHEAPEST SUM(f: CAST(weight * 2 AS int)) AS (cost, path)
                FROM persons
                WHERE ? REACHES id OVER friends1 f EDGE (person1, person2)
            ) T, UNNEST(T.path) AS R
            """,
            (933,),
        ).rows()
        # the paper's final result set: the empty path row is discarded
        assert rows == [
            ("Carmen Lepland", 1, 933, 1129, 0.5),
            ("Chen Wang", 5, 933, 1129, 0.5),
            ("Chen Wang", 5, 1129, 8333, 2.0),
        ]

    def test_a4_left_outer_retains_empty_path(self, social_db):
        rows = social_db.execute(
            """
            SELECT T.person, R.person1
            FROM (
                WITH friends1 AS (
                    SELECT * FROM friends WHERE creationDate < '2011-01-01'
                )
                SELECT firstName || ' ' || lastName AS person,
                       CHEAPEST SUM(f: 1) AS (cost, path)
                FROM persons
                WHERE ? REACHES id OVER friends1 f EDGE (person1, person2)
            ) T LEFT JOIN UNNEST(T.path) AS R ON TRUE
            """,
            (933,),
        ).rows()
        assert ("Mahinda Perera", None) in rows


class TestClosureProperty:
    """Graph results are ordinary table expressions: all regular SQL
    operators keep applying over them (the paper's closure property)."""

    def test_aggregate_over_graph_result(self, chain_db):
        chain_db.execute("CREATE TABLE nodes (v INT)")
        chain_db.execute("INSERT INTO nodes VALUES (1),(2),(3),(4),(5)")
        count = chain_db.execute(
            "SELECT count(*) FROM nodes WHERE 1 REACHES v OVER edges EDGE (s, d)"
        ).scalar()
        assert count == 5

    def test_order_and_limit_over_costs(self, chain_db):
        chain_db.execute("CREATE TABLE nodes (v INT)")
        chain_db.execute("INSERT INTO nodes VALUES (2),(3),(4),(5)")
        rows = chain_db.execute(
            "SELECT v, CHEAPEST SUM(e: w) AS c FROM nodes "
            "WHERE 1 REACHES v OVER edges e EDGE (s, d) "
            "ORDER BY c DESC LIMIT 2"
        ).rows()
        assert rows == [(5, 4), (4, 3)]

    def test_group_by_over_unnested_paths(self, chain_db):
        chain_db.execute("CREATE TABLE nodes (v INT)")
        chain_db.execute("INSERT INTO nodes VALUES (4),(5)")
        rows = chain_db.execute(
            """
            SELECT R.s, count(*) AS uses
            FROM (
                SELECT v, CHEAPEST SUM(e: w) AS (c, p) FROM nodes
                WHERE 1 REACHES v OVER edges e EDGE (s, d)
            ) T, UNNEST(T.p) AS R
            GROUP BY R.s ORDER BY R.s
            """
        ).rows()
        # edges 1->2,2->3,3->4 used twice (for v=4 and v=5), 4->5 once
        assert rows == [(1, 2), (2, 2), (3, 2), (4, 1)]

    def test_graph_result_as_derived_table_joined_back(self, chain_db):
        chain_db.execute("CREATE TABLE nodes (v INT)")
        chain_db.execute("INSERT INTO nodes VALUES (2),(5)")
        rows = chain_db.execute(
            """
            SELECT t.v, e2.d
            FROM (
                SELECT v FROM nodes WHERE 1 REACHES v OVER edges EDGE (s, d)
            ) t JOIN edges e2 ON e2.s = t.v
            ORDER BY 1, 2
            """
        ).rows()
        assert rows == [(2, 3)]
