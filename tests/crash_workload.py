"""Crash-torture workload child (not a test module).

Run as a subprocess by ``tests/test_crash_torture.py``::

    python tests/crash_workload.py <dbdir> <intents.log> <acks.log> \
        <seed> <ops> <durability>

With ``REPRO_CRASHPOINT`` armed in the environment, the process
hard-exits (status :data:`repro.faults.FAULT_EXIT_CODE`) somewhere in
the durability path.  The protocol that lets the parent reconstruct
exactly what was promised:

* before executing an op, its JSON is appended to ``intents.log`` and
  fsynced — so the parent knows the *one* op that may have been in
  flight at the kill;
* after the engine acknowledges the op (WAL append + fsync complete),
  the same JSON is appended to ``acks.log`` and fsynced — every line
  here is a durability promise the recovered database must honor.

Ops are self-contained SQL (deterministic given the line itself), so
the parent replays ``acks.log`` through :func:`apply_op` on a fresh
in-memory database to build the oracle state.
"""

import json
import os
import random
import sys


def apply_op(db, op):
    """Replay one op; shared by the child (live) and the parent
    (oracle rebuild).  ``save`` ops are durability events with no
    logical effect — the oracle skips them (the child checkpoints)."""
    if op["kind"] == "save":
        return
    if op["kind"] == "txn":
        session = db.connect()
        session.execute("BEGIN")
        for sql in op["sqls"]:
            session.execute(sql)
        session.execute("COMMIT")
    else:
        db.execute(op["sql"])


def generate_ops(rng, count, existing_tables, seed):
    """A deterministic randomized DML mix.  Table creation is emitted
    only when the (recovered) database lacks the table, so repeated
    trials over the same directory compose."""
    ops = []
    if "t" not in existing_tables:
        ops.append(
            {
                "kind": "ddl",
                "sql": "CREATE TABLE t (a INT, b VARCHAR)",
                "id": f"{seed}-create-t",
            }
        )
    if "u" not in existing_tables:
        ops.append(
            {
                "kind": "ddl",
                "sql": "CREATE TABLE u (x INT, y DOUBLE)",
                "id": f"{seed}-create-u",
            }
        )
    for index in range(count):
        roll = rng.random()
        if roll < 0.35:
            values = ", ".join(
                f"({rng.randint(0, 999)}, 'w{seed}-{index}-{j}')"
                for j in range(rng.randint(1, 3))
            )
            op = {"kind": "dml", "sql": f"INSERT INTO t VALUES {values}"}
        elif roll < 0.50:
            op = {
                "kind": "dml",
                "sql": (
                    f"UPDATE t SET b = 'u{seed}-{index}' "
                    f"WHERE a % 7 = {rng.randint(0, 6)}"
                ),
            }
        elif roll < 0.60:
            op = {
                "kind": "dml",
                "sql": f"DELETE FROM t WHERE a % 23 = {rng.randint(0, 22)}",
            }
        elif roll < 0.75:
            op = {
                "kind": "dml",
                "sql": (
                    f"INSERT INTO u VALUES ({rng.randint(0, 99)}, "
                    f"{rng.randint(0, 9)}.5)"
                ),
            }
        elif roll < 0.85:
            op = {
                "kind": "dml",
                "sql": f"UPDATE u SET y = y + 1 WHERE x % 5 = {rng.randint(0, 4)}",
            }
        elif roll < 0.95:
            op = {
                "kind": "txn",
                "sqls": [
                    f"INSERT INTO t VALUES ({rng.randint(0, 999)}, "
                    f"'txn{seed}-{index}')",
                    f"UPDATE u SET y = y + 2 WHERE x % 4 = {rng.randint(0, 3)}",
                ],
            }
        else:
            op = {"kind": "save"}
        op["id"] = f"{seed}-{index}"
        ops.append(op)
    return ops


def _append_line(handle, op):
    handle.write(json.dumps(op, separators=(",", ":")) + "\n")
    handle.flush()
    os.fsync(handle.fileno())


def main(argv):
    target, intents_path, acks_path, seed_text, ops_text, durability = argv
    seed, count = int(seed_text), int(ops_text)

    from repro import Database

    db = Database.open(target, durability=durability)
    rng = random.Random(seed)
    ops = generate_ops(rng, count, set(db.catalog.table_names()), seed)
    with open(intents_path, "a") as intents, open(acks_path, "a") as acks:
        for op in ops:
            _append_line(intents, op)
            if op["kind"] == "save":
                db.save(target)
            else:
                apply_op(db, op)
            _append_line(acks, op)
    db.close()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
