"""Error reporting: messages, positions, and the exception hierarchy."""

import pytest

from repro import (
    BindError,
    CatalogError,
    Database,
    ExecutionError,
    GraphRuntimeError,
    LexError,
    NotSupportedError,
    ParseError,
    ReproError,
    SqlError,
)
from repro.sql import tokenize


class TestHierarchy:
    def test_front_end_errors_are_sql_errors(self):
        assert issubclass(LexError, SqlError)
        assert issubclass(ParseError, SqlError)
        assert issubclass(BindError, SqlError)

    def test_everything_is_repro_error(self):
        for exc in (SqlError, CatalogError, ExecutionError, GraphRuntimeError,
                    NotSupportedError):
            assert issubclass(exc, ReproError)

    def test_graph_runtime_is_execution_error(self):
        assert issubclass(GraphRuntimeError, ExecutionError)

    def test_single_except_catches_all(self):
        db = Database()
        for bad in ("SELEC 1", "SELECT zz FROM nope", "SELECT 'x' @ 2"):
            with pytest.raises(ReproError):
                db.execute(bad)


class TestPositions:
    def test_lex_error_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("SELECT\n  $")
        assert excinfo.value.line == 2 and excinfo.value.column == 3

    def test_parse_error_mentions_found_token(self):
        with pytest.raises(ParseError, match="found"):
            Database().execute("SELECT FROM")

    def test_parse_error_has_location(self):
        with pytest.raises(ParseError, match=r"line \d+:\d+"):
            Database().execute("SELECT 1 +")


class TestMessages:
    def test_unknown_function_named(self):
        with pytest.raises(BindError, match="frobnicate"):
            Database().execute("SELECT frobnicate(1)")

    def test_wrong_arity_reported(self):
        with pytest.raises(BindError, match="argument"):
            Database().execute("SELECT abs(1, 2)")

    def test_unknown_column_named(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(BindError, match="'zz'"):
            db.execute("SELECT zz FROM t")

    def test_unknown_table_named(self):
        with pytest.raises(CatalogError, match="'nope'"):
            Database().execute("SELECT 1 FROM nope")

    def test_reaches_type_mismatch_message(self):
        db = Database()
        db.execute("CREATE TABLE e (s INT, d INT)")
        with pytest.raises(BindError, match="do not match"):
            db.execute("SELECT 1 WHERE 'a' REACHES 'b' OVER e EDGE (s, d)")

    def test_weight_error_quotes_the_rule(self):
        db = Database()
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2)")
        with pytest.raises(GraphRuntimeError, match="strictly greater than 0"):
            db.execute(
                "SELECT CHEAPEST SUM(k: 0) WHERE 1 REACHES 2 OVER e k EDGE (s, d)"
            )

    def test_missing_params_counted(self):
        db = Database()
        with pytest.raises(ExecutionError, match="at least 2"):
            db.execute("SELECT ? + ?", (1,))


class TestNotSupported:
    def test_except_all(self):
        with pytest.raises(NotSupportedError):
            Database().execute("SELECT 1 EXCEPT ALL SELECT 1")

    def test_reaches_in_or(self):
        db = Database()
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("CREATE TABLE v (x INT)")
        with pytest.raises(NotSupportedError, match="conjunct"):
            db.execute(
                "SELECT 1 FROM v WHERE x = 1 OR x REACHES 2 OVER e EDGE (s, d)"
            )


class TestStatementLevelValidation:
    def test_insert_arity_mismatch(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT, b INT)")
        with pytest.raises(BindError, match="expected 2"):
            db.execute("INSERT INTO t VALUES (1)")

    def test_insert_unknown_column(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(CatalogError):
            db.execute("INSERT INTO t (zz) VALUES (1)")

    def test_update_unknown_column(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(CatalogError):
            db.execute("UPDATE t SET zz = 1")

    def test_create_duplicate_column(self):
        with pytest.raises(CatalogError, match="duplicate"):
            Database().execute("CREATE TABLE t (a INT, a INT)")

    def test_group_by_validation_names_column(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT, b INT)")
        with pytest.raises(BindError, match="'b'"):
            db.execute("SELECT b, count(*) FROM t GROUP BY a")


class TestErrorCodes:
    """Every user-facing exception carries a stable machine-readable
    code — the contract the wire protocol's error frames rest on."""

    def test_codes_are_stable(self):
        from repro import errors

        expected = {
            errors.ReproError: "ERROR",
            errors.SqlError: "SQL_ERROR",
            errors.LexError: "LEX_ERROR",
            errors.ParseError: "PARSE_ERROR",
            errors.BindError: "BIND_ERROR",
            errors.CatalogError: "CATALOG_ERROR",
            errors.TypeError_: "TYPE_ERROR",
            errors.TransactionError: "TRANSACTION_ERROR",
            errors.TransactionConflictError: "TRANSACTION_CONFLICT",
            errors.ExecutionError: "EXECUTION_ERROR",
            errors.ResourceLimitError: "RESOURCE_LIMIT",
            errors.GraphRuntimeError: "GRAPH_RUNTIME_ERROR",
            errors.NotSupportedError: "NOT_SUPPORTED",
            errors.DatabaseClosedError: "DATABASE_CLOSED",
            errors.ServerError: "SERVER_ERROR",
            errors.ProtocolError: "PROTOCOL_ERROR",
            errors.BackpressureError: "BACKPRESSURE",
            errors.StatementTimeoutError: "STATEMENT_TIMEOUT",
            errors.ServerShutdownError: "SERVER_SHUTDOWN",
        }
        for cls, code in expected.items():
            assert cls.code == code, cls

    def test_every_subclass_has_a_distinct_code(self):
        from repro.errors import ERROR_CODES, ReproError

        def walk(cls):
            yield cls
            for sub in cls.__subclasses__():
                yield from walk(sub)

        classes = list(walk(ReproError))
        codes = [cls.code for cls in classes]
        assert len(set(codes)) == len(codes), "duplicate error codes"
        # the registry covers the full hierarchy
        assert set(ERROR_CODES.values()) == set(classes)

    def test_instances_expose_their_code(self):
        from repro.errors import CatalogError

        db = Database()
        with pytest.raises(CatalogError) as excinfo:
            db.execute("SELECT 1 FROM nope")
        assert excinfo.value.code == "CATALOG_ERROR"

    def test_error_from_code_round_trip(self):
        from repro.errors import ERROR_CODES, error_from_code

        for code, cls in ERROR_CODES.items():
            rebuilt = error_from_code(code, "boom")
            assert type(rebuilt) is cls
            assert str(rebuilt) == "boom"

    def test_error_from_code_handles_positional_constructors(self):
        # LexError takes (message, line, column); reconstruction from a
        # bare message must still yield the right type
        from repro.errors import LexError, error_from_code

        rebuilt = error_from_code("LEX_ERROR", "bad token")
        assert isinstance(rebuilt, LexError)
        assert str(rebuilt) == "bad token"

    def test_unknown_code_degrades_to_base(self):
        from repro.errors import ReproError, error_from_code

        rebuilt = error_from_code("NO_SUCH_CODE", "mystery")
        assert type(rebuilt) is ReproError

    def test_typed_exec_workers_validation(self):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError, match="exec_workers"):
            Database(exec_workers="bogus")
