"""End-to-end execution tests for the plain SQL subset."""

import datetime as dt

import pytest

from repro import Database
from repro.errors import ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.executescript(
        """
        CREATE TABLE nums (a INT, b DOUBLE, s VARCHAR);
        INSERT INTO nums VALUES
            (1, 1.5, 'one'), (2, 2.5, 'two'), (3, 3.5, 'three'), (4, 4.5, NULL);
        """
    )
    return database


class TestProjectionsAndFilters:
    def test_select_constant(self, db):
        assert db.execute("SELECT 42").rows() == [(42,)]

    def test_select_constant_expression(self, db):
        assert db.execute("SELECT 2 + 3 * 4").rows() == [(14,)]

    def test_select_column(self, db):
        assert db.execute("SELECT a FROM nums").rows() == [(1,), (2,), (3,), (4,)]

    def test_where_filters(self, db):
        assert db.execute("SELECT a FROM nums WHERE a > 2").rows() == [(3,), (4,)]

    def test_where_conjunction(self, db):
        rows = db.execute("SELECT a FROM nums WHERE a > 1 AND a < 4").rows()
        assert rows == [(2,), (3,)]

    def test_where_disjunction(self, db):
        rows = db.execute("SELECT a FROM nums WHERE a = 1 OR a = 4").rows()
        assert rows == [(1,), (4,)]

    def test_arithmetic(self, db):
        rows = db.execute("SELECT a + 1, a - 1, a * 2, a % 2 FROM nums WHERE a = 3").rows()
        assert rows == [(4, 2, 6, 1)]

    def test_division_yields_double(self, db):
        assert db.execute("SELECT 7 / 2").rows() == [(3.5,)]

    def test_division_by_zero_is_null(self, db):
        assert db.execute("SELECT 1 / 0").rows() == [(None,)]

    def test_unary_minus(self, db):
        assert db.execute("SELECT -a FROM nums WHERE a = 2").rows() == [(-2,)]

    def test_concat(self, db):
        rows = db.execute("SELECT s || '!' FROM nums WHERE a = 1").rows()
        assert rows == [("one!",)]

    def test_between(self, db):
        rows = db.execute("SELECT a FROM nums WHERE a BETWEEN 2 AND 3").rows()
        assert rows == [(2,), (3,)]

    def test_in_list(self, db):
        rows = db.execute("SELECT a FROM nums WHERE s IN ('one', 'three')").rows()
        assert rows == [(1,), (3,)]

    def test_like(self, db):
        rows = db.execute("SELECT s FROM nums WHERE s LIKE 't%'").rows()
        assert rows == [("two",), ("three",)]

    def test_like_underscore(self, db):
        rows = db.execute("SELECT s FROM nums WHERE s LIKE '_wo'").rows()
        assert rows == [("two",)]

    def test_case(self, db):
        rows = db.execute(
            "SELECT CASE WHEN a < 3 THEN 'small' ELSE 'big' END FROM nums"
        ).rows()
        assert rows == [("small",), ("small",), ("big",), ("big",)]

    def test_simple_case(self, db):
        rows = db.execute(
            "SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' ELSE '?' END "
            "FROM nums ORDER BY a LIMIT 3"
        ).rows()
        assert rows == [("one",), ("two",), ("?",)]

    def test_cast(self, db):
        assert db.execute("SELECT CAST(b AS int) FROM nums WHERE a = 2").rows() == [(2,)]

    def test_params(self, db):
        rows = db.execute("SELECT a FROM nums WHERE a = ?", (3,)).rows()
        assert rows == [(3,)]

    def test_missing_param_raises(self, db):
        with pytest.raises(ExecutionError, match="parameters"):
            db.execute("SELECT a FROM nums WHERE a = ?")

    def test_scalar_functions(self, db):
        rows = db.execute(
            "SELECT abs(-5), length('abc'), upper('x'), lower('Y'), "
            "coalesce(NULL, 7), floor(2.7), ceil(2.2), sqrt(9.0)"
        ).rows()
        assert rows == [(5, 3, "X", "y", 7, 2, 3, 3.0)]

    def test_nullif(self, db):
        assert db.execute("SELECT nullif(1, 1), nullif(1, 2)").rows() == [(None, 1)]


class TestOrderLimit:
    def test_order_asc(self, db):
        rows = db.execute("SELECT a FROM nums ORDER BY a").rows()
        assert rows == [(1,), (2,), (3,), (4,)]

    def test_order_desc(self, db):
        rows = db.execute("SELECT a FROM nums ORDER BY a DESC").rows()
        assert rows == [(4,), (3,), (2,), (1,)]

    def test_order_by_string(self, db):
        rows = db.execute("SELECT s FROM nums WHERE s IS NOT NULL ORDER BY s").rows()
        assert rows == [("one",), ("three",), ("two",)]

    def test_nulls_last_ascending(self, db):
        rows = db.execute("SELECT s FROM nums ORDER BY s").rows()
        assert rows[-1] == (None,)

    def test_nulls_first_descending(self, db):
        rows = db.execute("SELECT s FROM nums ORDER BY s DESC").rows()
        assert rows[0] == (None,)

    def test_multi_key_order(self, db):
        db.execute("CREATE TABLE mk (x INT, y INT)")
        db.execute("INSERT INTO mk VALUES (1, 2), (1, 1), (0, 9)")
        rows = db.execute("SELECT x, y FROM mk ORDER BY x, y DESC").rows()
        assert rows == [(0, 9), (1, 2), (1, 1)]

    def test_limit(self, db):
        assert len(db.execute("SELECT a FROM nums LIMIT 2").rows()) == 2

    def test_limit_offset(self, db):
        rows = db.execute("SELECT a FROM nums ORDER BY a LIMIT 2 OFFSET 1").rows()
        assert rows == [(2,), (3,)]

    def test_offset_beyond_end(self, db):
        assert db.execute("SELECT a FROM nums LIMIT 5 OFFSET 100").rows() == []

    def test_distinct(self, db):
        db.execute("CREATE TABLE dup (v INT)")
        db.execute("INSERT INTO dup VALUES (1), (1), (2)")
        assert db.execute("SELECT DISTINCT v FROM dup ORDER BY v").rows() == [(1,), (2,)]


class TestDatesAndResult:
    def test_date_roundtrip(self, db):
        db.execute("CREATE TABLE d (day DATE)")
        db.execute("INSERT INTO d VALUES ('2010-03-24')")
        assert db.execute("SELECT day FROM d").rows() == [(dt.date(2010, 3, 24),)]

    def test_date_comparison(self, db):
        db.execute("CREATE TABLE d (day DATE)")
        db.execute("INSERT INTO d VALUES ('2010-03-24'), ('2012-05-01')")
        rows = db.execute("SELECT day FROM d WHERE day < '2011-01-01'").rows()
        assert rows == [(dt.date(2010, 3, 24),)]

    def test_date_arithmetic(self, db):
        db.execute("CREATE TABLE d (day DATE)")
        db.execute("INSERT INTO d VALUES ('2010-01-01')")
        assert db.execute("SELECT day + 31 FROM d").rows() == [(dt.date(2010, 2, 1),)]

    def test_date_difference(self, db):
        db.execute("CREATE TABLE d (x DATE, y DATE)")
        db.execute("INSERT INTO d VALUES ('2010-01-31', '2010-01-01')")
        assert db.execute("SELECT x - y FROM d").rows() == [(30,)]

    def test_column_names(self, db):
        result = db.execute("SELECT a AS alpha, b FROM nums LIMIT 1")
        assert result.column_names == ["alpha", "b"]

    def test_scalar_helper(self, db):
        assert db.execute("SELECT count(*) FROM nums").scalar() == 4

    def test_scalar_on_multirow_raises(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT a FROM nums").scalar()

    def test_to_dicts(self, db):
        dicts = db.execute("SELECT a FROM nums WHERE a = 1").to_dicts()
        assert dicts == [{"a": 1}]

    def test_rowcount_for_insert(self, db):
        result = db.execute("INSERT INTO nums VALUES (9, 9.0, 'nine')")
        assert result.rowcount == 1 and not result.is_query


class TestDdlDml:
    def test_create_insert_select(self):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        db.execute("CREATE TABLE t2 (x INT)")
        db.execute("INSERT INTO t2 SELECT x + 10 FROM t")
        assert db.execute("SELECT x FROM t2 ORDER BY x").rows() == [(11,), (12,)]

    def test_insert_column_subset_fills_nulls(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT, b INT)")
        db.execute("INSERT INTO t (b) VALUES (5)")
        assert db.execute("SELECT a, b FROM t").rows() == [(None, 5)]

    def test_drop_table(self):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.execute("DROP TABLE t")
        assert not db.catalog.has("t")

    def test_insert_params(self):
        db = Database()
        db.execute("CREATE TABLE t (x INT, s VARCHAR)")
        db.execute("INSERT INTO t VALUES (?, ?)", (1, "a"))
        assert db.execute("SELECT * FROM t").rows() == [(1, "a")]

    def test_explain_mentions_operators(self, db):
        text = db.explain("SELECT a FROM nums WHERE a > 1")
        assert "Scan nums" in text and "Filter" in text
