"""Tests for the measurement harness and experiment drivers."""

import pytest

from repro.harness import (
    LatencyStats,
    NetworkModel,
    fig1a,
    fig1b,
    format_table,
    measure,
    table1,
    time_call,
)
from repro.ldbc import TABLE1_SIZES


class TestTiming:
    def test_time_call_returns_value(self):
        elapsed, value = time_call(lambda: 42)
        assert value == 42 and elapsed >= 0

    def test_measure_counts(self):
        stats = measure(lambda: None, repeats=5)
        assert stats.count == 5
        assert stats.total >= stats.maximum >= stats.mean >= stats.minimum

    def test_empty_stats(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0 and stats.mean == 0.0

    def test_stats_math(self):
        stats = LatencyStats.from_samples([1.0, 2.0, 3.0])
        assert stats.mean == 2.0 and stats.median == 2.0
        assert stats.minimum == 1.0 and stats.maximum == 3.0


class TestNetworkModel:
    def test_round_trip_floor(self):
        from repro import Database

        model = NetworkModel(round_trip_seconds=0.5)
        result = Database().execute("SELECT 1")
        assert model.latency(result) >= 0.5

    def test_bytes_scale_with_rows(self):
        from repro import Database

        db = Database()
        db.execute("CREATE TABLE t (x INT, s VARCHAR)")
        db.execute("INSERT INTO t VALUES (1, 'hello'), (2, 'world')")
        model = NetworkModel()
        one = model.result_bytes(db.execute("SELECT * FROM t LIMIT 1"))
        two = model.result_bytes(db.execute("SELECT * FROM t"))
        assert two > one

    def test_nested_tables_counted_flattened(self, chain_db):
        model = NetworkModel()
        result = chain_db.execute(
            "SELECT CHEAPEST SUM(e: w) AS (c, p) "
            "WHERE 1 REACHES 5 OVER edges e EDGE (s, d)"
        )
        # 4 path edges must contribute: clearly larger than the cost alone
        assert model.result_bytes(result) > 50


class TestExperimentDrivers:
    def test_table1_shape(self):
        rows = table1(scale_factors=(1, 3), scale=0.005)
        assert [r["scale_factor"] for r in rows] == [1, 3]
        for row in rows:
            ratio = row["paper_vertices"] / row["vertices"]
            assert ratio == pytest.approx(1 / 0.005, rel=0.1)

    def test_table1_edges_scale_like_paper(self):
        rows = table1(scale_factors=(1, 10), scale=0.005)
        paper_ratio = TABLE1_SIZES[10][1] / TABLE1_SIZES[1][1]
        ours_ratio = rows[1]["edges"] / rows[0]["edges"]
        assert ours_ratio == pytest.approx(paper_ratio, rel=0.05)

    def test_fig1a_rows(self):
        rows = fig1a(scale_factors=(1,), pairs_per_sf=3, scale=0.005)
        assert len(rows) == 2  # Q13 + Q14 variant
        assert {r["query"] for r in rows} == {
            "Q13 / unweighted S.P.",
            "Q14 (variant) / weighted S.P.",
        }
        assert all(r["avg_latency_s"] > 0 for r in rows)

    def test_fig1a_network_model_adds_overhead(self):
        model_rows = fig1a(
            scale_factors=(1,),
            pairs_per_sf=2,
            scale=0.005,
            network_model=NetworkModel(round_trip_seconds=10.0),
        )
        for row in model_rows:
            assert row["avg_latency_with_network_s"] >= 10.0

    def test_fig1b_rows(self):
        rows = fig1b(
            scale_factors=(1,), batch_sizes=(1, 4), repeats=1, scale=0.005
        )
        assert [r["batch_size"] for r in rows] == [1, 4]
        assert all(r["avg_latency_per_pair_s"] > 0 for r in rows)

    def test_fig1b_amortizes(self):
        rows = fig1b(
            scale_factors=(3,), batch_sizes=(1, 32), repeats=2, scale=0.01
        )
        per_pair = {r["batch_size"]: r["avg_latency_per_pair_s"] for r in rows}
        # batching 32 pairs must be much cheaper per pair than singletons
        assert per_pair[32] < per_pair[1] / 2

    def test_format_table(self):
        text = format_table(
            [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}], columns=("a", "b")
        )
        lines = text.splitlines()
        assert lines[0].startswith("a") and len(lines) == 4
