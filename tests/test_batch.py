"""Unit tests for the executor's Batch container."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.exec import Batch, ZeroColumnBatch
from repro.plan.logical import PlanColumn
from repro.storage import Column, DataType


def make_batch():
    schema = (
        PlanColumn(1, "a", DataType.INTEGER),
        PlanColumn(2, "b", DataType.VARCHAR),
    )
    columns = [
        Column.from_values(DataType.INTEGER, [1, 2, 3]),
        Column.from_values(DataType.VARCHAR, ["x", "y", "z"]),
    ]
    return Batch(schema, columns)


class TestBatch:
    def test_lookup_by_id(self):
        batch = make_batch()
        assert batch.column_by_id(2).to_pylist() == ["x", "y", "z"]

    def test_unknown_id_raises(self):
        with pytest.raises(ExecutionError, match="not present"):
            make_batch().column_by_id(99)

    def test_has_column(self):
        batch = make_batch()
        assert batch.has_column(1) and not batch.has_column(3)

    def test_width_mismatch_raises(self):
        schema = (PlanColumn(1, "a", DataType.INTEGER),)
        with pytest.raises(ExecutionError, match="width"):
            Batch(schema, [])

    def test_ragged_columns_raise(self):
        schema = (
            PlanColumn(1, "a", DataType.INTEGER),
            PlanColumn(2, "b", DataType.INTEGER),
        )
        with pytest.raises(ExecutionError, match="ragged"):
            Batch(
                schema,
                [
                    Column.from_values(DataType.INTEGER, [1]),
                    Column.from_values(DataType.INTEGER, [1, 2]),
                ],
            )

    def test_filter(self):
        batch = make_batch().filter(np.array([True, False, True]))
        assert batch.to_rows() == [(1, "x"), (3, "z")]

    def test_take_with_repeats(self):
        batch = make_batch().take(np.array([0, 0, 2]))
        assert batch.to_rows() == [(1, "x"), (1, "x"), (3, "z")]

    def test_append_columns(self):
        batch = make_batch()
        extra = Column.from_values(DataType.DOUBLE, [0.5, 1.5, 2.5])
        widened = batch.append_columns(
            (PlanColumn(3, "c", DataType.DOUBLE),), [extra]
        )
        assert widened.column_by_id(3).to_pylist() == [0.5, 1.5, 2.5]
        assert len(widened.schema) == 3

    def test_relabel(self):
        batch = make_batch()
        new_schema = (
            PlanColumn(10, "p", DataType.INTEGER),
            PlanColumn(11, "q", DataType.VARCHAR),
        )
        relabeled = batch.relabel(new_schema)
        assert relabeled.column_by_id(10).to_pylist() == [1, 2, 3]
        assert not relabeled.has_column(1)

    def test_relabel_arity_mismatch(self):
        with pytest.raises(ExecutionError):
            make_batch().relabel((PlanColumn(10, "p", DataType.INTEGER),))

    def test_empty_factory(self):
        schema = (PlanColumn(1, "a", DataType.INTEGER),)
        assert Batch.empty(schema).num_rows == 0


class TestZeroColumnBatch:
    def test_row_count_without_columns(self):
        batch = ZeroColumnBatch(5)
        assert batch.num_rows == 5 and batch.columns == []

    def test_filter(self):
        batch = ZeroColumnBatch(4).filter(np.array([True, False, True, False]))
        assert batch.num_rows == 2

    def test_take(self):
        assert ZeroColumnBatch(3).take(np.array([0, 0])).num_rows == 2

    def test_append_columns_turns_regular(self):
        batch = ZeroColumnBatch(2).append_columns(
            (PlanColumn(1, "a", DataType.INTEGER),),
            [Column.from_values(DataType.INTEGER, [7, 8])],
        )
        assert batch.to_rows() == [(7,), (8,)]
