"""The three 'customary means' baselines agree with the extension."""

import pytest

from repro import Database
from repro.baselines import (
    PsmShortestPath,
    chain_join_sql,
    q13_recursive_sql,
    run_q13_chain,
    run_q13_recursive,
)
from repro.ldbc import generate, make_database, random_pairs, run_q13


@pytest.fixture(scope="module")
def loaded():
    network = generate(1, seed=21)
    return network, make_database(network)


class TestRecursiveCte:
    def test_matches_extension(self, loaded):
        network, db = loaded
        for source, dest in random_pairs(network, 6, seed=1):
            assert run_q13_recursive(db, source, dest) == run_q13(db, source, dest)

    def test_unreachable_returns_none(self):
        db = Database()
        db.execute("CREATE TABLE knows (person1 INT, person2 INT)")
        db.execute("INSERT INTO knows VALUES (1, 2)")
        assert run_q13_recursive(db, 2, 1) is None

    def test_hop_bound_truncates(self):
        db = Database()
        db.execute("CREATE TABLE knows (person1 INT, person2 INT)")
        db.execute("INSERT INTO knows VALUES (1,2),(2,3),(3,4)")
        assert run_q13_recursive(db, 1, 4, max_hops=2) is None
        assert run_q13_recursive(db, 1, 4, max_hops=3) == 3

    def test_sql_text_parametrized(self):
        sql = q13_recursive_sql("e", "a", "b", 7)
        assert "e" in sql and "dist < 7" in sql


class TestPsm:
    def test_matches_extension(self, loaded):
        network, db = loaded
        psm = PsmShortestPath(db)
        for source, dest in random_pairs(network, 6, seed=2):
            assert psm(source, dest) == run_q13(db, source, dest)

    def test_self_distance(self, loaded):
        network, db = loaded
        psm = PsmShortestPath(db)
        person = int(network.person_ids[0])
        assert psm(person, person) == 0

    def test_temp_tables_reusable(self, loaded):
        network, db = loaded
        psm = PsmShortestPath(db)
        pairs = random_pairs(network, 3, seed=3)
        first = [psm(s, d) for s, d in pairs]
        second = [psm(s, d) for s, d in pairs]
        assert first == second

    def test_unreachable(self):
        db = Database()
        db.execute("CREATE TABLE knows (person1 INT, person2 INT)")
        db.execute("INSERT INTO knows VALUES (1, 2)")
        psm = PsmShortestPath(db)
        assert psm(2, 1) is None


class TestChainJoins:
    def test_matches_extension_within_bound(self, loaded):
        network, db = loaded
        for source, dest in random_pairs(network, 6, seed=4):
            expected = run_q13(db, source, dest)
            got = run_q13_chain(db, source, dest, max_hops=3)
            if expected is not None and expected <= 3:
                assert got == expected
            else:
                assert got is None

    def test_generated_sql_has_one_branch_per_hop(self):
        sql = chain_join_sql("e", "s", "d", 3)
        assert sql.count("UNION") == 2
        assert "e e3" in sql

    def test_self_distance_shortcut(self, loaded):
        _, db = loaded
        assert run_q13_chain(db, 42, 42, max_hops=2) == 0
