"""Compressed storage equivalence: ``Database(compression=True)`` must be
bit-identical to ``compression=False`` (the plain-array oracle) across
the fuzz grammars, DML on encoded columns, MVCC snapshots spanning an
encoding change, and the zone-map skip path — plus unit coverage of the
encodings and zone maps themselves, and the re-factorize-cliff
regression test.
"""

import random

import numpy as np
import pytest

from repro import Database, ReproError
from repro.storage import Column, DataType, choose_encoding, encode_columns
from repro.storage.encoding import factorize_counters
from repro.storage.zonemap import (
    ZonePredicate,
    build_column_zone_map,
    select_zone_spans,
)
from test_fuzz import random_graph_query, random_predicate, random_query

FUZZ_SETUP = """
    CREATE TABLE t1 (a INT, b VARCHAR, c DOUBLE);
    CREATE TABLE t2 (a INT, d INT);
    CREATE TABLE e (s INT, d INT, w INT);
    INSERT INTO t1 VALUES
        (1, 'x', 0.5), (2, 'y', 1.5), (3, NULL, 2.5), (NULL, 'z', NULL);
    INSERT INTO t2 VALUES (1, 10), (2, 20), (5, 50);
    INSERT INTO e VALUES (1, 2, 1), (2, 3, 2), (3, 1, 3), (2, 5, 1);
"""


def _bulk_rows(n):
    """Mixed-type rows with NULL/NaN edge cases and skewed domains."""
    rows = []
    for i in range(n):
        rows.append(
            (
                i,
                None if i % 13 == 0 else f"g{i % 5}",
                float("nan") if i % 17 == 0 else (None if i % 11 == 0 else i / 8),
                i % 2 == 0,
            )
        )
    return rows


def _paired(n=4000):
    """The same data in a compressed database and the plain oracle."""
    pair = []
    for compression in (True, False):
        db = Database(compression=compression)
        db.executescript(FUZZ_SETUP)
        db.execute("CREATE TABLE big (id BIGINT, grp VARCHAR, val DOUBLE, flag BOOLEAN)")
        db.insert_rows("big", _bulk_rows(n))
        db.execute("ANALYZE")
        pair.append(db)
    return pair


@pytest.fixture(scope="module")
def paired():
    return _paired()


def _assert_same(db_a, db_b, sql):
    """Both engines produce identical rows (repr compares NaN == NaN),
    or both refuse with a declared error."""
    try:
        rows_a = db_a.execute(sql).rows()
    except ReproError as exc_a:
        with pytest.raises(ReproError):
            db_b.execute(sql).rows()
        return
    rows_b = db_b.execute(sql).rows()
    assert repr(rows_a) == repr(rows_b), sql


class TestEncodingUnits:
    def test_dict_round_trip_with_nulls(self):
        values = np.array(
            ["b", "a", None, "b", "c", "a", None, "b"] * 4, dtype=object
        )
        mask = np.array([v is None for v in values])
        column = Column(DataType.VARCHAR, values, mask)
        enc = choose_encoding(column)
        assert enc is not None and enc.kind == "dict"
        data, out_mask = enc.materialize()
        assert [None if out_mask[i] else data[i] for i in range(len(values))] == [
            v for v in values
        ]
        codes, card, uniques = enc.factorize(False)
        p_codes, p_card, p_uniques = Column(
            DataType.VARCHAR, values, mask
        ).factorize()
        assert card == p_card
        assert np.array_equal(codes, p_codes)
        assert list(uniques) == list(p_uniques)

    def test_rle_round_trip(self):
        data = np.repeat(np.array([7, 7, 3, 9], dtype=np.int64), 50)
        mask = np.zeros(len(data), dtype=bool)
        mask[25:30] = True
        column = Column(DataType.BIGINT, data, mask)
        enc = choose_encoding(column)
        assert enc is not None and enc.kind == "rle"
        out, out_mask = enc.materialize()
        assert np.array_equal(out, data)
        assert np.array_equal(out_mask, mask)

    def test_pack_round_trip_is_bit_exact(self):
        data = (np.arange(500, dtype=np.int64) % 200) + 1_000_000
        column = Column(DataType.BIGINT, data, None)
        enc = choose_encoding(column)
        assert enc is not None and enc.kind == "pack"
        out, out_mask = enc.materialize()
        assert out.dtype == data.dtype
        assert np.array_equal(out, data)
        assert out_mask is None

    def test_nan_floats_are_never_encoded(self):
        data = np.ones(1000)
        data[500] = float("nan")
        assert choose_encoding(Column(DataType.DOUBLE, data, None)) is None

    def test_encode_columns_is_idempotent(self):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.insert_rows("t", [(i % 3,) for i in range(300)])
        version = db.table("t").current()
        first = encode_columns(version)
        assert first == 1
        assert encode_columns(version) == 0  # already resting

    def test_transparent_decode_caches(self):
        db = Database()
        db.execute("CREATE TABLE t (s VARCHAR)")
        db.insert_rows("t", [("ab" if i % 2 else "cd",) for i in range(200)])
        db.execute("ANALYZE")
        column = db.table("t").current().column("s")
        assert column.encoding is not None
        assert column.data[0] == "cd" and column.data[1] == "ab"
        assert column.data is column.data  # decoded once, then cached


class TestZoneMapUnits:
    def test_comparison_keep_masks(self):
        column = Column(DataType.BIGINT, np.arange(100, dtype=np.int64), None)
        zm = build_column_zone_map(column, granularity=25)
        assert zm.n_zones == 4
        assert list(zm.keep_mask("=", [30])) == [False, True, False, False]
        assert list(zm.keep_mask("<", [25])) == [True, False, False, False]
        assert list(zm.keep_mask(">=", [75])) == [False, False, False, True]
        assert list(zm.keep_mask("in", [10, 90])) == [True, False, False, True]

    def test_nan_zones_stay_conservative(self):
        data = np.arange(50, dtype=np.float64)
        data[10:20] = float("nan")  # second half of zone 0 (gran 20)
        column = Column(DataType.DOUBLE, data, None)
        zm = build_column_zone_map(column, granularity=20)
        # NaNs are excluded from min/max, never poisoning them to NaN —
        # zone 0 still matches its real values and only them
        assert list(zm.keep_mask("=", [5])) == [True, False, False]
        assert list(zm.keep_mask(">", [45])) == [False, False, True]

    def test_all_null_zone_skippable_by_comparison_kept_by_isnull(self):
        data = np.zeros(40, dtype=np.int64)
        mask = np.zeros(40, dtype=bool)
        mask[:20] = True  # zone 0 is all NULL
        data[20:] = np.arange(20)
        column = Column(DataType.BIGINT, data, mask)
        zm = build_column_zone_map(column, granularity=20)
        assert list(zm.keep_mask(">=", [0])) == [False, True]
        assert list(zm.keep_mask("isnull", [])) == [True, False]
        assert list(zm.keep_mask("notnull", [])) == [False, True]

    def test_select_zone_spans_merges_adjacent(self):
        db = Database()
        db.execute("CREATE TABLE t (x BIGINT)")
        db.insert_rows("t", [(i,) for i in range(100)])
        version = db.table("t").current()
        zf = ZonePredicate("x", "<", (("lit", 50),))
        spans, skipped, total = select_zone_spans(
            version, [zf], (), granularity=10
        )
        assert spans == [(0, 50)]  # five kept morsels merged into one span
        assert (skipped, total) == (5, 10)

    def test_unresolvable_operand_keeps_everything(self):
        db = Database()
        db.execute("CREATE TABLE t (x BIGINT)")
        db.insert_rows("t", [(i,) for i in range(100)])
        version = db.table("t").current()
        zf = ZonePredicate("x", "=", (("param", 3),))  # no such param
        spans, skipped, total = select_zone_spans(
            version, [zf], (), granularity=10
        )
        assert spans is None and skipped == 0


class TestFuzzEquivalence:
    """compression=True vs False over the test_fuzz grammars."""

    def test_random_queries_bit_identical(self, paired):
        db_c, db_p = paired
        rng = random.Random(2024)
        for _ in range(120):
            _assert_same(db_c, db_p, random_query(rng))

    def test_random_graph_queries_bit_identical(self, paired):
        db_c, db_p = paired
        rng = random.Random(77)
        for _ in range(60):
            _assert_same(db_c, db_p, random_graph_query(rng))

    def test_bulk_table_with_null_nan_edge_cases(self, paired):
        db_c, db_p = paired
        queries = [
            "SELECT grp, COUNT(*), SUM(val), MIN(id), MAX(id) "
            "FROM big GROUP BY grp ORDER BY grp",
            "SELECT COUNT(*) FROM big WHERE val IS NULL",
            "SELECT COUNT(*) FROM big WHERE grp IS NOT NULL AND id < 100",
            "SELECT DISTINCT flag FROM big ORDER BY flag",
            "SELECT id, val FROM big WHERE id IN (0, 17, 3999) ORDER BY id",
            "SELECT b1.id FROM big b1 JOIN big b2 ON b1.grp = b2.grp "
            "WHERE b1.id < 4 AND b2.id < 4 ORDER BY 1",
            "SELECT val FROM big ORDER BY val LIMIT 20",
        ]
        for sql in queries:
            _assert_same(db_c, db_p, sql)

    def test_random_predicates_on_encoded_bulk_table(self, paired):
        db_c, db_p = paired
        rng = random.Random(5150)
        for _ in range(40):
            sql = (
                "SELECT a, b, c FROM t1 "
                f"WHERE {random_predicate(rng)} ORDER BY 1, 2, 3"
            )
            _assert_same(db_c, db_p, sql)


class TestDMLOnEncodedColumns:
    """Writes against encoded tables: new versions decode transparently."""

    def test_update_insert_delete_after_analyze(self):
        db_c, db_p = _paired(600)
        statements = [
            "UPDATE big SET grp = 'patched' WHERE id % 50 = 0",
            "INSERT INTO big VALUES (9001, NULL, 2.5, TRUE)",
            "DELETE FROM big WHERE id BETWEEN 100 AND 120",
            "UPDATE big SET val = NULL WHERE id > 550",
        ]
        check = "SELECT * FROM big ORDER BY id"
        for sql in statements:
            db_c.execute(sql)
            db_p.execute(sql)
            _assert_same(db_c, db_p, check)

    def test_untouched_columns_keep_their_resting_encoding(self):
        db = Database()
        db.execute("CREATE TABLE t (x BIGINT, s VARCHAR)")
        db.insert_rows("t", [(i, f"g{i % 3}") for i in range(500)])
        db.execute("ANALYZE")
        before = db.table("t").current().resting_info()
        assert before["s"][0] == "dict"
        db.execute("INSERT INTO t VALUES (999, 'g0')")
        # the write built fresh columns; re-ANALYZE re-encodes them
        db.execute("ANALYZE")
        after = db.table("t").current().resting_info()
        assert after["s"][0] == "dict"
        assert db.execute("SELECT count(*) FROM t").scalar() == 501


class TestMVCCAcrossEncoding:
    def test_pinned_snapshot_spans_an_encoding_change(self):
        db = Database()
        db.execute("CREATE TABLE t (x BIGINT, s VARCHAR)")
        db.insert_rows("t", [(i, f"g{i % 4}") for i in range(400)])
        reader = db.connect()
        reader.execute("BEGIN")
        first = reader.execute("SELECT * FROM t ORDER BY x").rows()
        # outside the transaction: encode the resting format, then commit
        # a write on top of it
        db.execute("ANALYZE")
        db.execute("UPDATE t SET s = 'rewritten' WHERE x < 100")
        again = reader.execute("SELECT * FROM t ORDER BY x").rows()
        assert repr(again) == repr(first)  # snapshot unmoved by either
        reader.execute("COMMIT")
        after = reader.execute(
            "SELECT count(*) FROM t WHERE s = 'rewritten'"
        ).scalar()
        assert after == 100


class TestFactorizeCliffRegression:
    def test_repeated_group_by_never_reencodes_an_encoded_column(
        self, monkeypatch
    ):
        import repro.storage.column as column_module

        # force the memo off entirely: without resting encodings every
        # statement would pay a fresh sort-based encode (the old cliff)
        monkeypatch.setattr(column_module, "FACTORIZE_MEMO_MAX_ROWS", 0)
        db = Database()
        db.execute("CREATE TABLE t (g VARCHAR, v BIGINT)")
        db.insert_rows("t", [(f"g{i % 7}", i) for i in range(5000)])
        db.execute("ANALYZE")
        assert db.table("t").current().resting_info()["g"][0] == "dict"
        # no ORDER BY: sorting would factorize the (tiny, fresh)
        # aggregate output column each statement, which is not the cliff
        sql = "SELECT g, SUM(v) FROM t GROUP BY g"
        first = sorted(db.execute(sql).rows())
        baseline = factorize_counters.snapshot()
        for _ in range(3):
            assert sorted(db.execute(sql).rows()) == first
        after = factorize_counters.snapshot()
        assert after["encodes"] == baseline["encodes"]  # zero re-encodes
        assert after["resting_hits"] > baseline["resting_hits"]


class TestZoneSkipEndToEnd:
    def test_selective_scan_skips_morsels_and_matches_oracle(self):
        n = 140_000  # > 2 morsels at the default 64Ki granularity
        db_c = Database()
        db_p = Database(compression=False)
        for db in (db_c, db_p):
            db.execute("CREATE TABLE m (id BIGINT, v DOUBLE)")
            db.insert_rows("m", [(i, i / 2) for i in range(n)])
            db.execute("ANALYZE")
        sql = "SELECT id, v FROM m WHERE id = 139999"
        assert repr(db_c.execute(sql).rows()) == repr(db_p.execute(sql).rows())
        stats = db_c.storage_stats()
        assert stats["morsels_skipped"] > 0
        assert db_p.storage_stats()["morsels_skipped"] == 0
        # ranges and IN skip too, and stay correct
        for sql in [
            "SELECT count(*) FROM m WHERE id >= 139000",
            "SELECT count(*) FROM m WHERE id IN (1, 70000, 139999)",
            "SELECT sum(v) FROM m WHERE id < 1000",
        ]:
            _assert_same(db_c, db_p, sql)
        assert db_c.storage_stats()["morsels_skipped"] > stats["morsels_skipped"]
