"""Bulk-ingest correctness: the appender / COPY fast path must be
bit-identical to row-at-a-time INSERT.

The row path is the oracle: every fuzz case loads the same values once
through ``Session.executemany`` INSERTs and once through
:class:`repro.api.Appender` (or ``COPY``), then compares the resting
column arrays and null masks exactly — same dtypes, same NaNs, same
mask normalization.  Transactional cases check bulk appends obey MVCC
like any DML: buffered in the transaction, invisible to concurrent
snapshots until COMMIT, first-committer-wins on conflict.

The zone-map regression class pins the append-side staleness fix:
appending to a table whose columns carry zone maps *extends* the maps
over the new tail (intact zones preserved, no full rescan, no
re-ANALYZE) and selective scans keep skipping morsels afterwards.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import Database, TypeError_
from repro.errors import TransactionConflictError
from repro.storage import (
    ZONE_ROWS,
    Column,
    DataType,
    bulk_column,
    bulk_columns,
    zone_map_for,
)

ALL_TYPES = [
    DataType.BOOLEAN,
    DataType.INTEGER,
    DataType.BIGINT,
    DataType.DOUBLE,
    DataType.VARCHAR,
    DataType.DATE,
]

TYPE_NAMES = {
    DataType.BOOLEAN: "BOOLEAN",
    DataType.INTEGER: "INTEGER",
    DataType.BIGINT: "BIGINT",
    DataType.DOUBLE: "DOUBLE",
    DataType.VARCHAR: "VARCHAR",
    DataType.DATE: "DATE",
}


def random_value(rng: random.Random, type_):
    if type_ == DataType.BOOLEAN:
        return rng.random() < 0.5
    if type_ == DataType.INTEGER:
        return rng.randint(-(2**31), 2**31 - 1)
    if type_ == DataType.BIGINT:
        return rng.randint(-(2**62), 2**62)
    if type_ == DataType.DOUBLE:
        if rng.random() < 0.1:
            return float("nan")  # NaN is a value, not NULL
        return rng.uniform(-1e6, 1e6)
    if type_ == DataType.VARCHAR:
        return "".join(rng.choice("abcdeé ") for _ in range(rng.randint(0, 8)))
    if type_ == DataType.DATE:
        return f"{rng.randint(1990, 2030):04d}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
    raise AssertionError(type_)


def random_vector(rng: random.Random, type_, n: int, *, null_rate=0.15):
    return [
        None if rng.random() < null_rate else random_value(rng, type_)
        for _ in range(n)
    ]


def column_state(column: Column):
    data = np.asarray(column.data)
    mask = column.mask
    return data, None if mask is None else np.asarray(mask)


def assert_columns_identical(got: Column, want: Column) -> None:
    gd, gm = column_state(got)
    wd, wm = column_state(want)
    assert got.type == want.type
    assert gd.dtype == wd.dtype
    assert (gm is None) == (wm is None)
    if gm is not None:
        assert np.array_equal(gm, wm)
    live = ~gm if gm is not None else np.ones(len(gd), dtype=bool)
    if gd.dtype.kind == "f":
        assert np.array_equal(gd[live], wd[live], equal_nan=True)
    elif gd.dtype == object:
        assert list(gd[live]) == list(wd[live])
    else:
        assert np.array_equal(gd[live], wd[live])


def assert_tables_identical(db_a: Database, db_b: Database, name: str) -> None:
    va, vb = db_a.table(name).current(), db_b.table(name).current()
    assert va.num_rows == vb.num_rows
    for ca, cb in zip(va.columns, vb.columns):
        assert_columns_identical(ca, cb)


def fresh_pair(columns: list[tuple[str, DataType]]):
    ddl = "CREATE TABLE t (%s)" % ", ".join(
        f"{n} {TYPE_NAMES[t]}" for n, t in columns
    )
    db_bulk, db_rows = Database(), Database()
    db_bulk.execute(ddl)
    db_rows.execute(ddl)
    return db_bulk, db_rows


# ---------------------------------------------------------------------------
# bulk_column / bulk_columns unit level
# ---------------------------------------------------------------------------
class TestBulkColumn:
    @pytest.mark.parametrize("type_", ALL_TYPES)
    def test_list_path_matches_from_values(self, type_):
        rng = random.Random(hash(type_.name) & 0xFFFF)
        values = random_vector(rng, type_, 257)
        got = bulk_column(type_, values)
        want = Column.from_values(type_, values)
        assert_columns_identical(got, want)

    def test_vector_path_matches_row_coercion(self):
        rng = np.random.default_rng(11)
        ints = rng.integers(-(2**31), 2**31 - 1, size=1000)
        doubles = rng.normal(size=1000)
        doubles[::17] = np.nan
        for type_, arr in [
            (DataType.INTEGER, ints.astype(np.int64)),
            (DataType.BIGINT, ints),
            (DataType.DOUBLE, doubles),
            (DataType.BOOLEAN, ints % 2 == 0),
            (DataType.DATE, np.abs(ints) % 100000),
        ]:
            got = bulk_column(type_, arr)
            want = Column.from_values(type_, list(arr))
            assert_columns_identical(got, want)

    def test_integral_floats_accepted_fractional_rejected(self):
        col = bulk_column(DataType.BIGINT, np.array([1.0, 2.0, 3.0]))
        assert list(col.data) == [1, 2, 3] and col.data.dtype == np.int64
        with pytest.raises(TypeError_):
            bulk_column(DataType.BIGINT, np.array([1.0, 2.5]))
        with pytest.raises(TypeError_):
            bulk_column(DataType.INTEGER, np.array([1.0, np.nan]))

    def test_integer_range_check(self):
        with pytest.raises(TypeError_):
            bulk_column(DataType.INTEGER, np.array([2**40], dtype=np.int64))

    def test_type_mismatches_rejected(self):
        with pytest.raises(TypeError_):
            bulk_column(DataType.BOOLEAN, np.array([1, 0]))
        with pytest.raises(TypeError_):
            bulk_column(DataType.VARCHAR, [1, 2])
        with pytest.raises(TypeError_):
            bulk_column(DataType.INTEGER, np.zeros((2, 2)))

    def test_unicode_array_takes_coercion_path(self):
        got = bulk_column(DataType.VARCHAR, np.array(["a", "bb", "ccc"]))
        assert got.data.dtype == object and list(got.data) == ["a", "bb", "ccc"]

    def test_bulk_columns_fills_missing_with_nulls(self):
        from repro.storage import Schema

        schema = Schema([("a", DataType.INTEGER), ("b", DataType.VARCHAR)])
        cols = bulk_columns(schema, {"a": [1, 2, 3]})
        assert cols[1].mask is not None and bool(cols[1].mask.all())

    def test_bulk_columns_rejects_bad_shapes(self):
        from repro.storage import Schema

        schema = Schema([("a", DataType.INTEGER), ("b", DataType.VARCHAR)])
        with pytest.raises(TypeError_):
            bulk_columns(schema, {"nope": [1]})
        with pytest.raises(TypeError_):
            bulk_columns(schema, [[1, 2], ["x"]])
        with pytest.raises(TypeError_):
            bulk_columns(schema, [[1, 2]], columns=["a", "b"])


# ---------------------------------------------------------------------------
# appender vs row INSERT fuzz
# ---------------------------------------------------------------------------
class TestAppenderEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz_bit_identical(self, seed):
        rng = random.Random(seed)
        width = rng.randint(1, 5)
        columns = [
            (f"c{i}", rng.choice(ALL_TYPES)) for i in range(width)
        ]
        db_bulk, db_rows = fresh_pair(columns)
        placeholders = ", ".join("?" for _ in columns)
        app = db_bulk.appender("t")
        for _ in range(rng.randint(1, 4)):
            n = rng.randint(0, 300)
            vectors = [random_vector(rng, t, n) for _, t in columns]
            app.append(vectors)
            with db_rows.connect() as session:
                session.executemany(
                    f"INSERT INTO t VALUES ({placeholders})",
                    list(zip(*vectors)) if n else [],
                )
            if rng.random() < 0.3:  # resting encodings mid-stream
                db_bulk.execute("ANALYZE t")
                db_rows.execute("ANALYZE t")
            assert_tables_identical(db_bulk, db_rows, "t")

    def test_numpy_batches_match_row_inserts(self):
        db_bulk, db_rows = fresh_pair(
            [("a", DataType.BIGINT), ("b", DataType.DOUBLE)]
        )
        rng = np.random.default_rng(3)
        a = rng.integers(0, 10**12, size=5000)
        b = rng.normal(size=5000)
        db_bulk.appender("t").append({"a": a, "b": b})
        with db_rows.connect() as session:
            session.executemany(
                "INSERT INTO t VALUES (?, ?)",
                [(int(x), float(y)) for x, y in zip(a, b)],
            )
        assert_tables_identical(db_bulk, db_rows, "t")

    def test_append_rows_convenience(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        assert db.appender("t").append_rows([(1, "x"), (None, None)]) == 2
        assert db.execute("SELECT * FROM t").rows() == [(1, "x"), (None, None)]

    def test_partial_columns_fill_nulls(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        db.appender("t").append([[1, 2]], columns=["a"])
        assert db.execute("SELECT * FROM t").rows() == [(1, None), (2, None)]

    def test_empty_append_is_noop(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        version_before = db.table("t").current().version_id
        assert db.appender("t").append({"a": []}) == 0
        assert db.table("t").current().version_id == version_before

    def test_closed_appender_rejects(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        with db.appender("t") as app:
            app.append({"a": [1]})
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            app.append({"a": [2]})


# ---------------------------------------------------------------------------
# transactions and snapshots around bulk appends
# ---------------------------------------------------------------------------
class TestAppenderTransactions:
    def test_append_inside_transaction_buffers(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        with db.connect() as session:
            session.begin()
            session.appender("t").append({"a": [1, 2, 3]})
            # visible to the transaction's own statements…
            assert session.execute("SELECT count(*) FROM t").scalar() == 3
            # …invisible to autocommit readers until COMMIT
            assert db.execute("SELECT count(*) FROM t").scalar() == 0
            session.commit()
        assert db.execute("SELECT count(*) FROM t").scalar() == 3

    def test_rollback_discards_bulk_append(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        with db.connect() as session:
            session.begin()
            session.appender("t").append({"a": list(range(100))})
            session.rollback()
        assert db.execute("SELECT count(*) FROM t").scalar() == 0

    def test_snapshot_reader_spans_bulk_commit(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.appender("t").append({"a": [1]})
        with db.connect() as reader:
            reader.begin()
            assert reader.execute("SELECT count(*) FROM t").scalar() == 1
            db.appender("t").append({"a": list(range(50))})  # autocommit
            # the reader's pinned snapshot must not see the bulk commit
            assert reader.execute("SELECT count(*) FROM t").scalar() == 1
            reader.commit()
        assert db.execute("SELECT count(*) FROM t").scalar() == 51

    def test_first_committer_wins_on_bulk_conflict(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        s1, s2 = db.connect(), db.connect()
        s1.begin()
        s2.begin()
        s1.appender("t").append({"a": [1]})
        s2.appender("t").append({"a": [2]})
        s1.commit()
        with pytest.raises(TransactionConflictError):
            s2.commit()

    def test_transactional_append_matches_row_path(self):
        db_bulk, db_rows = fresh_pair(
            [("a", DataType.INTEGER), ("b", DataType.VARCHAR)]
        )
        vectors = [[1, None, 3], ["x", "y", None]]
        with db_bulk.connect() as session:
            session.begin()
            session.appender("t").append(vectors)
            session.commit()
        with db_rows.connect() as session:
            session.begin()
            for row in zip(*vectors):
                session.execute("INSERT INTO t VALUES (?, ?)", row)
            session.commit()
        assert_tables_identical(db_bulk, db_rows, "t")


# ---------------------------------------------------------------------------
# COPY ... FROM
# ---------------------------------------------------------------------------
class TestCopy:
    def test_copy_csv_matches_inserts(self, tmp_path):
        path = tmp_path / "rows.csv"
        path.write_text(
            "a,b,c\n"
            "1,hello,1.5\n"
            "2,,2.5\n"
            ",world,\n"
        )
        columns = [
            ("a", DataType.INTEGER),
            ("b", DataType.VARCHAR),
            ("c", DataType.DOUBLE),
        ]
        db_bulk, db_rows = fresh_pair(columns)
        result = db_bulk.execute(f"COPY t FROM '{path}'")
        assert result.rowcount == 3
        with db_rows.connect() as session:
            session.executemany(
                "INSERT INTO t VALUES (?, ?, ?)",
                [(1, "hello", 1.5), (2, None, 2.5), (None, "world", None)],
            )
        assert_tables_identical(db_bulk, db_rows, "t")

    def test_copy_options(self, tmp_path, db):
        path = tmp_path / "rows.txt"
        path.write_text("1|x\n2|y\n")
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        db.execute(
            f"COPY t FROM '{path}' WITH (NO_HEADER, DELIMITER '|', FORMAT CSV)"
        )
        assert db.execute("SELECT * FROM t ORDER BY a").rows() == [
            (1, "x"),
            (2, "y"),
        ]

    def test_copy_column_list(self, tmp_path, db):
        path = tmp_path / "rows.csv"
        path.write_text("b\nonly\n")
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        db.execute(f"COPY t (b) FROM '{path}'")
        assert db.execute("SELECT * FROM t").rows() == [(None, "only")]

    def test_copy_npz(self, tmp_path, db):
        path = tmp_path / "batch.npz"
        np.savez(
            path,
            a=np.array([1, 2, 3], dtype=np.int64),
            b=np.array([0.5, np.nan, 1.5]),
        )
        db.execute("CREATE TABLE t (a BIGINT, b DOUBLE)")
        assert db.execute(f"COPY t FROM '{path}'").rowcount == 3
        rows = db.execute("SELECT a FROM t ORDER BY a").rows()
        assert rows == [(1,), (2,), (3,)]

    def test_copy_inside_transaction(self, tmp_path, db):
        path = tmp_path / "rows.csv"
        path.write_text("a\n1\n2\n")
        db.execute("CREATE TABLE t (a INTEGER)")
        with db.connect() as session:
            session.begin()
            session.execute(f"COPY t FROM '{path}'")
            assert session.execute("SELECT count(*) FROM t").scalar() == 2
            assert db.execute("SELECT count(*) FROM t").scalar() == 0
            session.rollback()
        assert db.execute("SELECT count(*) FROM t").scalar() == 0

    def test_copy_errors(self, tmp_path, db):
        from repro.errors import BindError, ExecutionError

        db.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(ExecutionError):
            db.execute("COPY t FROM '/nonexistent/file.csv'")
        path = tmp_path / "rows.csv"
        path.write_text("a\n1\n")
        with pytest.raises(BindError):
            db.execute(f"COPY t FROM '{path}' WITH (FORMAT XML)")
        with pytest.raises(BindError):
            db.execute(f"COPY t FROM '{path}' WITH (WHATEVER)")

    def test_copy_single_column_no_row_loop_semantics(self, tmp_path, db):
        # a ragged row raises, nothing partially applied
        from repro import TypeError_ as Te

        path = tmp_path / "bad.csv"
        path.write_text("a\n1\n1,2\n")
        db.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(Te):
            db.execute(f"COPY t FROM '{path}'")
        assert db.execute("SELECT count(*) FROM t").scalar() == 0


# ---------------------------------------------------------------------------
# zone maps survive appends (the staleness fix)
# ---------------------------------------------------------------------------
class TestZoneMapExtension:
    def _seed(self, db, n):
        db.execute("CREATE TABLE t (k BIGINT, v DOUBLE)")
        rng = np.random.default_rng(5)
        db.appender("t").append(
            {"k": np.arange(n, dtype=np.int64), "v": rng.normal(size=n)}
        )

    def test_append_extends_zone_map_in_place(self, db):
        n = 3 * ZONE_ROWS + 123
        self._seed(db, n)
        column = db.table("t").current().columns[0]
        before = zone_map_for(column)  # lazily built, cached on the column
        assert before.n_rows == n
        tail = np.arange(n, n + ZONE_ROWS, dtype=np.int64)
        db.appender("t").append({"k": tail, "v": np.zeros(len(tail))})
        extended = db.table("t").current().columns[0]._zones[ZONE_ROWS]
        # present WITHOUT a scan or ANALYZE: extended at append time
        assert extended.n_rows == n + len(tail)
        intact = n // ZONE_ROWS
        assert np.array_equal(extended.mins[:intact], before.mins[:intact])
        assert np.array_equal(extended.maxs[:intact], before.maxs[:intact])
        # the old partial last zone was rescanned over old + new rows
        assert extended.mins[intact] == intact * ZONE_ROWS
        assert extended.maxs[-1] == n + len(tail) - 1

    def test_scans_keep_skipping_after_append(self, db):
        n = 3 * ZONE_ROWS
        self._seed(db, n)
        # selective scan builds + consults the zone maps
        sql = "SELECT count(*) FROM t WHERE k >= ?"
        assert db.execute(sql, (n - 5,)).scalar() == 5
        skipped_before = db.storage_stats()["morsels_skipped"]
        assert skipped_before > 0
        db.appender("t").append(
            {
                "k": np.arange(n, n + ZONE_ROWS, dtype=np.int64),
                "v": np.zeros(ZONE_ROWS),
            }
        )
        # no re-ANALYZE: the extended maps still zone-skip
        assert db.execute(sql, (n + ZONE_ROWS - 5,)).scalar() == 5
        assert db.storage_stats()["morsels_skipped"] > skipped_before

    def test_row_inserts_also_extend(self, db):
        n = ZONE_ROWS + 10
        self._seed(db, n)
        column = db.table("t").current().columns[0]
        zone_map_for(column)
        db.execute("INSERT INTO t VALUES (?, ?)", (10**9, 0.0))
        extended = db.table("t").current().columns[0]._zones[ZONE_ROWS]
        assert extended.n_rows == n + 1
        assert extended.maxs[-1] == 10**9
