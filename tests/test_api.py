"""Public API surface: Database, Result, connect, executescript, explain."""

import pytest

from repro import Database, connect
from repro.errors import CatalogError, ExecutionError, ParseError
from repro.storage import DataType


class TestDatabase:
    def test_connect_returns_fresh_database(self):
        db1, db2 = connect(), connect()
        db1.execute("CREATE TABLE t (x INT)")
        assert db1.catalog.has("t") and not db2.catalog.has("t")

    def test_executescript_returns_results(self):
        db = Database()
        results = db.executescript(
            "CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT * FROM t"
        )
        assert len(results) == 3
        assert results[1].rowcount == 1
        assert results[2].rows() == [(1,)]

    def test_executescript_without_trailing_semicolon(self):
        results = Database().executescript("SELECT 1; SELECT 2")
        assert len(results) == 2

    def test_create_table_helper(self):
        db = Database()
        db.create_table("t", [("a", DataType.INTEGER), ("b", DataType.VARCHAR)])
        assert db.table("t").schema.names() == ["a", "b"]

    def test_insert_rows_helper(self):
        db = Database()
        db.create_table("t", [("a", DataType.INTEGER)])
        assert db.insert_rows("t", [(1,), (2,)]) == 2

    def test_params_accept_list(self):
        db = Database()
        assert db.execute("SELECT ?", [7]).rows() == [(7,)]

    def test_syntax_error_propagates(self):
        with pytest.raises(ParseError):
            Database().execute("SELEC 1")

    def test_unknown_table_propagates(self):
        with pytest.raises(CatalogError):
            Database().execute("SELECT * FROM nope")


class TestExplain:
    def test_explain_plain_query(self, chain_db):
        text = chain_db.explain("SELECT s FROM edges WHERE w > 1 ORDER BY s")
        assert "Scan edges" in text
        assert "Sort" in text

    def test_explain_graph_select(self, chain_db):
        text = chain_db.explain(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 5 OVER edges EDGE (s, d)"
        )
        assert "GraphSelect" in text and "cheapest=1" in text

    def test_explain_graph_join_after_rewrite(self, chain_db):
        chain_db.execute("CREATE TABLE v (x INT)")
        text = chain_db.explain(
            "SELECT a.x, b.x FROM v a, v b "
            "WHERE a.x REACHES b.x OVER edges EDGE (s, d)"
        )
        assert "GraphJoin" in text and "GraphSelect" not in text

    def test_explain_rejects_ddl(self, chain_db):
        with pytest.raises(ExecutionError):
            chain_db.explain("CREATE TABLE t (x INT)")

    def test_explain_recursive(self):
        db = Database()
        text = db.explain(
            "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL SELECT n+1 FROM r "
            "WHERE n < 3) SELECT * FROM r"
        )
        assert "Recursive" in text and "Materialize" in text


class TestResult:
    def test_len_and_iter(self):
        db = Database()
        result = db.execute("VALUES (1), (2), (3)")
        assert len(result) == 3
        assert list(result) == [(1,), (2,), (3,)]

    def test_fetchall_alias(self):
        result = Database().execute("SELECT 1")
        assert result.fetchall() == result.rows()

    def test_ddl_result_is_not_query(self):
        result = Database().execute("CREATE TABLE t (x INT)")
        assert not result.is_query
        assert result.rows() == []
        assert result.column_names == []

    def test_scalar_empty_is_none(self):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        assert db.execute("SELECT x FROM t").scalar() is None

    def test_repr_smoke(self):
        db = Database()
        assert "rows" in repr(db.execute("SELECT 1 AS one"))
        assert "rowcount" in repr(db.execute("CREATE TABLE t (x INT)"))

    def test_duplicate_output_names_allowed(self, social_db):
        # SELECT VP1.*, VP2.* — duplicate names must survive
        result = social_db.execute(
            "SELECT p1.id, p2.id FROM persons p1, persons p2 LIMIT 1"
        )
        assert result.column_names == ["id", "id"]


class TestDatabaseLifecycle:
    def test_close_is_idempotent(self):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.close()
        db.close()  # second close is a no-op, not an error
        assert db.closed

    def test_context_manager_closes(self):
        with Database() as db:
            db.execute("CREATE TABLE t (x INT)")
            assert not db.closed
        assert db.closed

    def test_execute_after_close_is_typed(self):
        from repro.errors import DatabaseClosedError

        db = Database()
        db.close()
        for call in (
            lambda: db.execute("SELECT 1"),
            lambda: db.connect(),
            lambda: db.executescript("SELECT 1;"),
        ):
            with pytest.raises(DatabaseClosedError) as excinfo:
                call()
            assert excinfo.value.code == "DATABASE_CLOSED"

    def test_close_joins_worker_threads(self):
        import threading

        db = Database(exec_workers=2, parallel_min_rows=0, morsel_rows=16)
        db.execute("CREATE TABLE t (k INT, v INT)")
        db.table("t").insert_rows([(i, i) for i in range(256)])
        db.execute("SELECT k, count(*) FROM t GROUP BY k")  # spin up the pool
        db.close()
        alive = [
            t.name
            for t in threading.enumerate()
            if t.is_alive() and t.name.startswith("repro-exec")
        ]
        assert alive == []

    def test_close_with_live_session_is_safe(self):
        from repro.errors import DatabaseClosedError

        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        session = db.connect()
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1)")
        db.close()
        with pytest.raises(DatabaseClosedError):
            session.execute("COMMIT")
        session.close()  # rolls back quietly against the closed engine

    def test_save_still_works_after_close(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (7)")
        db.close()
        target = tmp_path / "snap"
        db.save(str(target))  # catalog stays readable for a final dump
        reloaded = Database.load(str(target))
        assert reloaded.execute("SELECT x FROM t").scalar() == 7
        reloaded.close()
