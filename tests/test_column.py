"""Unit tests for the physical Column vector."""

import numpy as np
import pytest

from repro.errors import TypeError_
from repro.storage import Column, DataType


class TestConstruction:
    def test_from_values(self):
        col = Column.from_values(DataType.INTEGER, [1, 2, 3])
        assert col.to_pylist() == [1, 2, 3]
        assert not col.has_nulls

    def test_from_values_with_nulls(self):
        col = Column.from_values(DataType.INTEGER, [1, None, 3])
        assert col.to_pylist() == [1, None, 3]
        assert col.has_nulls

    def test_constant(self):
        col = Column.constant(DataType.VARCHAR, "x", 3)
        assert col.to_pylist() == ["x", "x", "x"]

    def test_constant_null(self):
        col = Column.constant(DataType.INTEGER, None, 2)
        assert col.to_pylist() == [None, None]

    def test_nulls(self):
        col = Column.nulls(DataType.DOUBLE, 4)
        assert col.to_pylist() == [None] * 4

    def test_empty(self):
        assert len(Column.empty(DataType.BIGINT)) == 0

    def test_mask_length_mismatch_raises(self):
        with pytest.raises(TypeError_):
            Column(DataType.INTEGER, np.zeros(3, np.int32), np.zeros(2, np.bool_))

    def test_all_false_mask_dropped(self):
        col = Column(DataType.INTEGER, np.zeros(3, np.int32), np.zeros(3, np.bool_))
        assert col.mask is None


class TestPositional:
    def test_take(self):
        col = Column.from_values(DataType.INTEGER, [10, 20, 30])
        taken = col.take(np.array([2, 0, 2]))
        assert taken.to_pylist() == [30, 10, 30]

    def test_take_preserves_nulls(self):
        col = Column.from_values(DataType.INTEGER, [1, None, 3])
        assert col.take(np.array([1, 1])).to_pylist() == [None, None]

    def test_filter(self):
        col = Column.from_values(DataType.VARCHAR, ["a", "b", "c"])
        kept = col.filter(np.array([True, False, True]))
        assert kept.to_pylist() == ["a", "c"]

    def test_slice(self):
        col = Column.from_values(DataType.INTEGER, [1, 2, 3, 4])
        assert col.slice(1, 3).to_pylist() == [2, 3]

    def test_concat(self):
        a = Column.from_values(DataType.INTEGER, [1])
        b = Column.from_values(DataType.INTEGER, [None, 3])
        assert Column.concat([a, b]).to_pylist() == [1, None, 3]

    def test_concat_type_mismatch_raises(self):
        a = Column.from_values(DataType.INTEGER, [1])
        b = Column.from_values(DataType.DOUBLE, [1.0])
        with pytest.raises(TypeError_):
            Column.concat([a, b])

    def test_concat_empty_list_raises(self):
        with pytest.raises(TypeError_):
            Column.concat([])


class TestCast:
    def test_int_to_double(self):
        col = Column.from_values(DataType.INTEGER, [1, 2]).cast(DataType.DOUBLE)
        assert col.type == DataType.DOUBLE
        assert col.to_pylist() == [1.0, 2.0]

    def test_double_to_int_truncates(self):
        col = Column.from_values(DataType.DOUBLE, [1.9, -1.9]).cast(DataType.INTEGER)
        assert col.to_pylist() == [1, -1]

    def test_int_to_varchar(self):
        col = Column.from_values(DataType.INTEGER, [42]).cast(DataType.VARCHAR)
        assert col.to_pylist() == ["42"]

    def test_varchar_to_int(self):
        col = Column.from_values(DataType.VARCHAR, [" 7 "]).cast(DataType.INTEGER)
        assert col.to_pylist() == [7]

    def test_varchar_to_int_invalid_raises(self):
        col = Column.from_values(DataType.VARCHAR, ["x"])
        with pytest.raises(TypeError_):
            col.cast(DataType.INTEGER)

    def test_varchar_to_double(self):
        col = Column.from_values(DataType.VARCHAR, ["2.5"]).cast(DataType.DOUBLE)
        assert col.to_pylist() == [2.5]

    def test_date_to_varchar(self):
        col = Column.from_values(DataType.DATE, ["2010-03-24"]).cast(DataType.VARCHAR)
        assert col.to_pylist() == ["2010-03-24"]

    def test_varchar_to_date(self):
        col = Column.from_values(DataType.VARCHAR, ["1970-01-02"]).cast(DataType.DATE)
        assert col.to_pylist() == [1]

    def test_bool_to_varchar(self):
        col = Column.from_values(DataType.BOOLEAN, [True, False]).cast(DataType.VARCHAR)
        assert col.to_pylist() == ["true", "false"]

    def test_null_passes_through_cast(self):
        col = Column.from_values(DataType.INTEGER, [None, 2]).cast(DataType.DOUBLE)
        assert col.to_pylist() == [None, 2.0]

    def test_same_type_is_identity(self):
        col = Column.from_values(DataType.INTEGER, [1])
        assert col.cast(DataType.INTEGER) is col

    def test_decode_dates(self):
        import datetime as dt

        col = Column.from_values(DataType.DATE, ["2010-03-24"])
        assert col.to_pylist(decode_dates=True) == [dt.date(2010, 3, 24)]
