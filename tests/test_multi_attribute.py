"""Multi-attribute vertex keys — the extension Section 2 sketches:
"extending for multiple attributes is not complicated, though the
notation becomes cumbersome"."""

import pytest

from repro import Database
from repro.errors import BindError, ParseError
from repro.sql import ast, parse_query


@pytest.fixture
def db():
    database = Database()
    database.executescript(
        """
        CREATE TABLE routes (
            c1 VARCHAR, city1 VARCHAR, c2 VARCHAR, city2 VARCHAR, km INT
        );
        INSERT INTO routes VALUES
            ('NL', 'AMS', 'UK', 'LON', 500),
            ('UK', 'LON', 'US', 'NYC', 5500),
            ('NL', 'AMS', 'US', 'NYC', 5900),
            ('US', 'NYC', 'US', 'SFO', 4100);
        CREATE TABLE places (country VARCHAR, city VARCHAR);
        INSERT INTO places VALUES
            ('NL', 'AMS'), ('UK', 'LON'), ('US', 'NYC'), ('US', 'SFO');
        """
    )
    return database


class TestParsing:
    def test_tuple_endpoints_and_keys(self):
        q = parse_query(
            "SELECT 1 WHERE (a, b) REACHES (c, d) OVER e EDGE ((s1, s2), (d1, d2))"
        )
        reaches = q.where
        assert len(reaches.source) == 2 and len(reaches.dest) == 2
        assert reaches.src_cols == ("s1", "s2")
        assert reaches.dst_cols == ("d1", "d2")

    def test_arity_mismatch_rejected_in_parser(self):
        with pytest.raises(ParseError, match="arity"):
            parse_query("SELECT 1 WHERE (a, b) REACHES c OVER e EDGE ((s1, s2), d)")

    def test_single_attribute_still_one_tuples(self):
        q = parse_query("SELECT 1 WHERE a REACHES b OVER e EDGE (s, d)")
        assert len(q.where.source) == 1

    def test_tuple_outside_reaches_rejected(self, db):
        with pytest.raises(BindError, match="REACHES endpoints"):
            db.execute("SELECT (1, 2)")


class TestExecution:
    def test_reachability_on_composite_keys(self, db):
        rows = db.execute(
            """
            SELECT p.country, p.city FROM places p
            WHERE ('NL', 'AMS') REACHES (p.country, p.city)
            OVER routes EDGE ((c1, city1), (c2, city2))
            ORDER BY p.city
            """
        ).rows()
        assert rows == [
            ("NL", "AMS"),
            ("UK", "LON"),
            ("US", "NYC"),
            ("US", "SFO"),
        ]

    def test_weighted_cost_and_path(self, db):
        cost, path = db.execute(
            """
            SELECT CHEAPEST SUM(r: km) AS (cost, path)
            WHERE ('NL', 'AMS') REACHES ('US', 'NYC')
            OVER routes r EDGE ((c1, city1), (c2, city2))
            """
        ).rows()[0]
        assert cost == 5900  # direct beats AMS->LON->NYC (6000)
        assert len(path) == 1

    def test_hop_count_on_composite_keys(self, db):
        assert db.execute(
            """
            SELECT CHEAPEST SUM(1)
            WHERE ('NL', 'AMS') REACHES ('US', 'SFO')
            OVER routes EDGE ((c1, city1), (c2, city2))
            """
        ).scalar() == 2

    def test_same_city_name_differs_by_country(self, db):
        # ('XX', 'AMS') is not a vertex even though 'AMS' appears in keys
        rows = db.execute(
            """
            SELECT 1 WHERE ('XX', 'AMS') REACHES ('US', 'NYC')
            OVER routes EDGE ((c1, city1), (c2, city2))
            """
        ).rows()
        assert rows == []

    def test_unnest_composite_key_path(self, db):
        rows = db.execute(
            """
            SELECT R.city1, R.city2
            FROM (
                SELECT CHEAPEST SUM(r: 1) AS (c, p)
                WHERE ('NL', 'AMS') REACHES ('US', 'SFO')
                OVER routes r EDGE ((c1, city1), (c2, city2))
            ) T, UNNEST(T.p) AS R
            ORDER BY R.city1
            """
        ).rows()
        assert rows == [("AMS", "NYC"), ("NYC", "SFO")]

    def test_graph_join_on_composite_keys(self, db):
        rows = db.execute(
            """
            SELECT a.city, b.city, CHEAPEST SUM(1) AS hops
            FROM places a, places b
            WHERE a.country = 'NL' AND b.country = 'US'
              AND (a.country, a.city) REACHES (b.country, b.city)
              OVER routes EDGE ((c1, city1), (c2, city2))
            ORDER BY hops, b.city
            """
        ).rows()
        assert rows == [("AMS", "NYC", 1), ("AMS", "SFO", 2)]

    def test_null_component_never_reaches(self, db):
        db.execute("INSERT INTO places VALUES (NULL, 'AMS')")
        rows = db.execute(
            """
            SELECT count(*) FROM places p
            WHERE (p.country, p.city) REACHES ('US', 'NYC')
            OVER routes EDGE ((c1, city1), (c2, city2))
            """
        ).rows()
        # NL/AMS, UK/LON, and US/NYC (itself) — never the NULL row
        assert rows == [(3,)]

    def test_per_attribute_type_check(self, db):
        db.execute("CREATE TABLE bad (k1 INT, k2 VARCHAR)")
        with pytest.raises(BindError, match="match"):
            db.execute(
                """
                SELECT 1 WHERE (1, 2) REACHES (3, 4)
                OVER routes EDGE ((c1, city1), (c2, city2))
                """
            )

    def test_mixed_type_composite_keys(self, db):
        # (int, varchar) composite keys are fine as long as both sides agree
        db.execute("CREATE TABLE me (a1 INT, a2 VARCHAR, b1 INT, b2 VARCHAR)")
        db.execute("INSERT INTO me VALUES (1, 'x', 2, 'y'), (2, 'y', 3, 'z')")
        assert db.execute(
            "SELECT CHEAPEST SUM(1) WHERE (1, 'x') REACHES (3, 'z') "
            "OVER me EDGE ((a1, a2), (b1, b2))"
        ).scalar() == 2
