"""Join execution tests: hash joins, cross products, left outer, residuals."""

import pytest

from repro import Database
from repro.errors import ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.executescript(
        """
        CREATE TABLE l (id INT, tag VARCHAR);
        CREATE TABLE r (id INT, val INT);
        INSERT INTO l VALUES (1, 'a'), (2, 'b'), (3, 'c');
        INSERT INTO r VALUES (1, 10), (1, 11), (3, 30), (4, 40);
        """
    )
    return database


class TestInnerJoin:
    def test_equi_join(self, db):
        rows = db.execute(
            "SELECT l.id, r.val FROM l JOIN r ON l.id = r.id ORDER BY 1, 2"
        ).rows()
        assert rows == [(1, 10), (1, 11), (3, 30)]

    def test_comma_syntax_with_where(self, db):
        rows = db.execute(
            "SELECT l.id, r.val FROM l, r WHERE l.id = r.id ORDER BY 1, 2"
        ).rows()
        assert rows == [(1, 10), (1, 11), (3, 30)]

    def test_join_with_residual_condition(self, db):
        rows = db.execute(
            "SELECT l.id, r.val FROM l JOIN r ON l.id = r.id AND r.val > 10 "
            "ORDER BY 1"
        ).rows()
        assert rows == [(1, 11), (3, 30)]

    def test_non_equi_join_falls_back(self, db):
        rows = db.execute(
            "SELECT l.id, r.id FROM l JOIN r ON l.id < r.id ORDER BY 1, 2"
        ).rows()
        assert rows == [(1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]

    def test_null_keys_never_match(self, db):
        db.execute("INSERT INTO l VALUES (NULL, 'n')")
        db.execute("INSERT INTO r VALUES (NULL, 99)")
        rows = db.execute("SELECT l.id FROM l JOIN r ON l.id = r.id").rows()
        assert (None,) not in rows

    def test_self_join_aliases(self, db):
        rows = db.execute(
            "SELECT a.id, b.id FROM l a JOIN l b ON a.id = b.id ORDER BY 1"
        ).rows()
        assert rows == [(1, 1), (2, 2), (3, 3)]

    def test_expression_keys(self, db):
        # l.id + 1 matches r.id for l.id in {2, 3} (r has ids 3 and 4)
        rows = db.execute(
            "SELECT l.id FROM l JOIN r ON l.id + 1 = r.id ORDER BY 1"
        ).rows()
        assert rows == [(2,), (3,)]


class TestCrossJoin:
    def test_cross_product_size(self, db):
        assert db.execute("SELECT count(*) FROM l CROSS JOIN r").scalar() == 12

    def test_comma_cross(self, db):
        assert db.execute("SELECT count(*) FROM l, r").scalar() == 12

    def test_three_way(self, db):
        assert db.execute("SELECT count(*) FROM l, l x, l y").scalar() == 27

    def test_cross_guard(self, db):
        # build a table big enough that a cross join trips the safety cap
        db.execute("CREATE TABLE big (x INT)")
        db.table("big").insert_rows([(i,) for i in range(5000)])
        with pytest.raises(ExecutionError, match="safety limit"):
            db.execute("SELECT count(*) FROM big a, big b")


class TestLeftJoin:
    def test_unmatched_left_padded_with_nulls(self, db):
        rows = db.execute(
            "SELECT l.id, r.val FROM l LEFT JOIN r ON l.id = r.id ORDER BY l.id, r.val"
        ).rows()
        assert (2, None) in rows
        assert len(rows) == 4

    def test_left_join_all_unmatched(self, db):
        rows = db.execute(
            "SELECT l.tag, r.val FROM l LEFT JOIN r ON l.id = r.id + 100"
        ).rows()
        assert all(val is None for _, val in rows) and len(rows) == 3

    def test_left_join_preserves_match_multiplicity(self, db):
        rows = db.execute(
            "SELECT r.val FROM l LEFT JOIN r ON l.id = r.id WHERE l.id = 1 ORDER BY 1"
        ).rows()
        assert rows == [(10,), (11,)]


class TestSubqueriesInFrom:
    def test_derived_join(self, db):
        rows = db.execute(
            "SELECT d.id FROM (SELECT id FROM l WHERE id > 1) d "
            "JOIN r ON d.id = r.id"
        ).rows()
        assert rows == [(3,)]

    def test_uncorrelated_scalar_subquery(self, db):
        rows = db.execute(
            "SELECT id FROM l WHERE id = (SELECT min(id) FROM r)"
        ).rows()
        assert rows == [(1,)]

    def test_scalar_subquery_empty_is_null(self, db):
        rows = db.execute(
            "SELECT (SELECT id FROM r WHERE id > 100) FROM l"
        ).rows()
        assert rows == [(None,), (None,), (None,)]

    def test_scalar_subquery_multirow_raises(self, db):
        with pytest.raises(ExecutionError, match="more than one row"):
            db.execute("SELECT (SELECT id FROM r) FROM l")

    def test_in_subquery(self, db):
        rows = db.execute(
            "SELECT id FROM l WHERE id IN (SELECT id FROM r) ORDER BY id"
        ).rows()
        assert rows == [(1,), (3,)]

    def test_not_in_subquery(self, db):
        rows = db.execute(
            "SELECT id FROM l WHERE id NOT IN (SELECT id FROM r) ORDER BY id"
        ).rows()
        assert rows == [(2,)]

    def test_not_in_with_null_in_subquery_is_empty(self, db):
        db.execute("INSERT INTO r VALUES (NULL, 0)")
        rows = db.execute("SELECT id FROM l WHERE id NOT IN (SELECT id FROM r)").rows()
        assert rows == []

    def test_exists(self, db):
        assert db.execute(
            "SELECT count(*) FROM l WHERE EXISTS (SELECT 1 FROM r WHERE r.id = 1)"
        ).scalar() == 3

    def test_exists_empty(self, db):
        assert db.execute(
            "SELECT count(*) FROM l WHERE EXISTS (SELECT 1 FROM r WHERE r.id = 99)"
        ).scalar() == 0


class TestRightJoin:
    def test_unmatched_right_padded_with_nulls(self, db):
        rows = db.execute(
            "SELECT l.tag, r.val FROM l RIGHT JOIN r ON l.id = r.id "
            "ORDER BY r.val"
        ).rows()
        assert (None, 40) in rows  # r.id = 4 has no left match
        assert len(rows) == 4

    def test_column_order_preserved(self, db):
        result = db.execute(
            "SELECT * FROM l RIGHT JOIN r ON l.id = r.id LIMIT 1"
        )
        assert result.column_names == ["id", "tag", "id", "val"]

    def test_right_outer_spelling(self, db):
        rows = db.execute(
            "SELECT count(*) FROM l RIGHT OUTER JOIN r ON l.id = r.id"
        ).rows()
        assert rows == [(4,)]

    def test_right_join_equals_swapped_left_join(self, db):
        right = db.execute(
            "SELECT l.id, r.id FROM l RIGHT JOIN r ON l.id = r.id"
        ).rows()
        left = db.execute(
            "SELECT l.id, r.id FROM r LEFT JOIN l ON l.id = r.id"
        ).rows()
        assert sorted(right, key=repr) == sorted(left, key=repr)


class TestNotExists:
    def test_not_exists_true(self, db):
        assert db.execute(
            "SELECT count(*) FROM l WHERE NOT EXISTS "
            "(SELECT 1 FROM r WHERE r.id = 99)"
        ).scalar() == 3

    def test_not_exists_false(self, db):
        assert db.execute(
            "SELECT count(*) FROM l WHERE NOT EXISTS (SELECT 1 FROM r)"
        ).scalar() == 0
