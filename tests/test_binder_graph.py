"""Binder tests for the graph extension: REACHES / CHEAPEST SUM semantics
(Section 2 rules) and the rewriter's graph-join unfolding (Section 3.1)."""

import pytest

from repro import Database
from repro.errors import BindError, NotSupportedError
from repro.plan import Binder, BoundQuery, logical as lp, rewrite
from repro.sql import parse_statement
from repro.storage import DataType


@pytest.fixture
def db():
    database = Database()
    database.executescript(
        """
        CREATE TABLE vp (id INT, name VARCHAR);
        CREATE TABLE e (s INT, d INT, w DOUBLE);
        CREATE TABLE se (s VARCHAR, d VARCHAR);
        """
    )
    return database


def bind(db, sql):
    bound = Binder(db.catalog).bind_statement(parse_statement(sql))
    assert isinstance(bound, BoundQuery)
    return bound.plan


def find(plan, node_type):
    out = []

    def visit(node):
        if isinstance(node, node_type):
            out.append(node)
        for child in node.children:
            visit(child)

    visit(plan)
    return out


class TestGraphSelectBinding:
    def test_creates_graph_select(self, db):
        plan = bind(db, "SELECT * FROM vp WHERE id REACHES id OVER e EDGE (s, d)")
        assert len(find(plan, lp.LGraphSelect)) == 1

    def test_semantic_stage_never_creates_graph_join(self, db):
        # "the semantic stage of the compiler always creates a graph select"
        plan = bind(
            db,
            "SELECT * FROM vp a, vp b WHERE a.id REACHES b.id OVER e EDGE (s, d)",
        )
        assert len(find(plan, lp.LGraphJoin)) == 0
        assert len(find(plan, lp.LGraphSelect)) == 1

    def test_unknown_edge_column(self, db):
        with pytest.raises(BindError, match="no column"):
            bind(db, "SELECT * FROM vp WHERE id REACHES id OVER e EDGE (s, nope)")

    def test_endpoint_type_mismatch(self, db):
        # VP.X is VARCHAR, edge keys INT -> "a semantic error arises"
        with pytest.raises(BindError, match="match"):
            bind(db, "SELECT * FROM vp WHERE name REACHES id OVER e EDGE (s, d)")

    def test_string_keys_accepted(self, db):
        bind(db, "SELECT * FROM vp WHERE name REACHES name OVER se EDGE (s, d)")

    def test_edge_key_type_mismatch(self, db):
        db.execute("CREATE TABLE bad (s INT, d VARCHAR)")
        with pytest.raises(BindError):
            bind(db, "SELECT * FROM vp WHERE id REACHES id OVER bad EDGE (s, d)")

    def test_reaches_under_or_rejected(self, db):
        with pytest.raises(NotSupportedError):
            bind(
                db,
                "SELECT * FROM vp WHERE id = 1 OR id REACHES id OVER e EDGE (s, d)",
            )

    def test_reaches_under_not_rejected(self, db):
        with pytest.raises((NotSupportedError, BindError)):
            bind(db, "SELECT * FROM vp WHERE NOT id REACHES id OVER e EDGE (s, d)")

    def test_multiple_reaches_stack(self, db):
        plan = bind(
            db,
            "SELECT * FROM vp WHERE id REACHES id OVER e e1 EDGE (s, d) "
            "AND id REACHES id OVER e e2 EDGE (d, s)",
        )
        assert len(find(plan, lp.LGraphSelect)) == 2

    def test_duplicate_binding_rejected(self, db):
        with pytest.raises(BindError, match="duplicate"):
            bind(
                db,
                "SELECT * FROM vp WHERE id REACHES id OVER e f EDGE (s, d) "
                "AND id REACHES id OVER e f EDGE (d, s)",
            )

    def test_edge_can_be_subquery(self, db):
        plan = bind(
            db,
            "SELECT * FROM vp WHERE id REACHES id "
            "OVER (SELECT * FROM e WHERE w > 0) f EDGE (s, d)",
        )
        graph_selects = find(plan, lp.LGraphSelect)
        assert len(graph_selects) == 1
        assert len(find(graph_selects[0].edge, lp.LFilter)) == 1


class TestCheapestBinding:
    def test_requires_reaches(self, db):
        with pytest.raises(BindError, match="REACHES"):
            bind(db, "SELECT CHEAPEST SUM(1) FROM vp")

    def test_cost_column_added(self, db):
        plan = bind(
            db,
            "SELECT CHEAPEST SUM(1) AS hops FROM vp "
            "WHERE id REACHES id OVER e EDGE (s, d)",
        )
        assert plan.schema[0].name == "hops"
        assert plan.schema[0].type == DataType.BIGINT

    def test_weighted_cost_type_follows_weight(self, db):
        plan = bind(
            db,
            "SELECT CHEAPEST SUM(f: w) AS c FROM vp "
            "WHERE id REACHES id OVER e f EDGE (s, d)",
        )
        assert plan.schema[0].type == DataType.DOUBLE

    def test_path_column_is_nested_table(self, db):
        plan = bind(
            db,
            "SELECT CHEAPEST SUM(f: w) AS (c, p) FROM vp "
            "WHERE id REACHES id OVER e f EDGE (s, d)",
        )
        path_col = plan.schema[1]
        assert path_col.type == DataType.NESTED_TABLE
        # "the attributes enclosed in the nested table ... are the same as
        # the attributes of the EDGE table expression"
        assert [c.name for c in path_col.nested] == ["s", "d", "w"]

    def test_unknown_binding(self, db):
        with pytest.raises(BindError, match="unknown edge binding"):
            bind(
                db,
                "SELECT CHEAPEST SUM(zz: 1) FROM vp "
                "WHERE id REACHES id OVER e f EDGE (s, d)",
            )

    def test_binding_mandatory_with_two_predicates(self, db):
        with pytest.raises(BindError, match="multiple"):
            bind(
                db,
                "SELECT CHEAPEST SUM(1) FROM vp "
                "WHERE id REACHES id OVER e a EDGE (s, d) "
                "AND id REACHES id OVER e b EDGE (d, s)",
            )

    def test_binding_optional_with_one_predicate(self, db):
        bind(
            db,
            "SELECT CHEAPEST SUM(1) FROM vp WHERE id REACHES id OVER e EDGE (s, d)",
        )

    def test_weight_must_be_numeric(self, db):
        db.execute("CREATE TABLE ew (s INT, d INT, label VARCHAR)")
        with pytest.raises(BindError, match="numeric"):
            bind(
                db,
                "SELECT CHEAPEST SUM(f: label) FROM vp "
                "WHERE id REACHES id OVER ew f EDGE (s, d)",
            )

    def test_weight_sees_only_edge_columns(self, db):
        with pytest.raises(BindError):
            bind(
                db,
                "SELECT CHEAPEST SUM(f: id) FROM vp "
                "WHERE id REACHES id OVER e f EDGE (s, d)",
            )

    def test_cheapest_in_where_rejected(self, db):
        with pytest.raises(BindError):
            bind(
                db,
                "SELECT 1 FROM vp WHERE CHEAPEST SUM(1) > 2 "
                "AND id REACHES id OVER e EDGE (s, d)",
            )

    def test_cheapest_inside_expression_rejected(self, db):
        with pytest.raises(BindError, match="projection item"):
            bind(
                db,
                "SELECT CHEAPEST SUM(1) + 1 FROM vp "
                "WHERE id REACHES id OVER e EDGE (s, d)",
            )

    def test_three_aliases_rejected(self, db):
        with pytest.raises(BindError):
            bind(
                db,
                "SELECT CHEAPEST SUM(1) AS (a, b, c) FROM vp "
                "WHERE id REACHES id OVER e EDGE (s, d)",
            )

    def test_two_cheapest_on_one_predicate(self, db):
        plan = bind(
            db,
            "SELECT CHEAPEST SUM(f: 1) AS hops, CHEAPEST SUM(f: w) AS wcost "
            "FROM vp WHERE id REACHES id OVER e f EDGE (s, d)",
        )
        graph_select = find(plan, lp.LGraphSelect)[0]
        assert len(graph_select.spec.cheapest) == 2


class TestGraphJoinRewrite:
    def test_cross_product_plus_graph_select_unfolds(self, db):
        plan = rewrite(
            bind(
                db,
                "SELECT a.id, b.id FROM vp a, vp b "
                "WHERE a.id REACHES b.id OVER e EDGE (s, d)",
            )
        )
        assert len(find(plan, lp.LGraphJoin)) == 1
        assert len(find(plan, lp.LGraphSelect)) == 0

    def test_same_side_endpoints_stay_graph_select(self, db):
        plan = rewrite(
            bind(
                db,
                "SELECT a.id FROM vp a, vp b "
                "WHERE a.id REACHES a.id OVER e EDGE (s, d)",
            )
        )
        assert len(find(plan, lp.LGraphJoin)) == 0

    def test_filters_push_through_cross_before_unfolding(self, db):
        plan = rewrite(
            bind(
                db,
                "SELECT a.id, b.id FROM vp a, vp b "
                "WHERE a.id = 1 AND b.id = 2 "
                "AND a.id REACHES b.id OVER e EDGE (s, d)",
            )
        )
        assert len(find(plan, lp.LGraphJoin)) == 1

    def test_schema_preserved_by_rewrite(self, db):
        bound = bind(
            db,
            "SELECT a.id, b.id, CHEAPEST SUM(1) AS c FROM vp a, vp b "
            "WHERE a.id REACHES b.id OVER e EDGE (s, d)",
        )
        rewritten = rewrite(bound)
        assert [c.col_id for c in bound.schema] == [c.col_id for c in rewritten.schema]
