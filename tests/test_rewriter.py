"""Unit tests of the plan rewriter (Section 3.1's optimizer stage)."""

import pytest

from repro import Database
from repro.plan import Binder, BoundQuery, logical as lp, rewrite
from repro.sql import parse_statement


@pytest.fixture
def db():
    database = Database()
    database.executescript(
        """
        CREATE TABLE a (x INT, tag VARCHAR);
        CREATE TABLE b (y INT, tag VARCHAR);
        CREATE TABLE e (s INT, d INT, w INT);
        """
    )
    return database


def plan_of(db, sql):
    bound = Binder(db.catalog).bind_statement(parse_statement(sql))
    assert isinstance(bound, BoundQuery)
    return bound.plan


def nodes_of(plan, node_type):
    found = []

    def visit(node):
        if isinstance(node, node_type):
            found.append(node)
        for child in node.children:
            visit(child)

    visit(plan)
    return found


class TestFilterPushdown:
    def test_left_only_filter_pushed_left(self, db):
        plan = rewrite(plan_of(db, "SELECT a.x FROM a, b WHERE a.x = 1"))
        joins = nodes_of(plan, lp.LJoin)
        assert joins, "cross join survives"
        assert nodes_of(joins[0].left, lp.LFilter)

    def test_right_only_filter_pushed_right(self, db):
        plan = rewrite(plan_of(db, "SELECT a.x FROM a, b WHERE b.y = 1"))
        joins = nodes_of(plan, lp.LJoin)
        assert nodes_of(joins[0].right, lp.LFilter)

    def test_cross_side_filter_becomes_join_condition(self, db):
        plan = rewrite(plan_of(db, "SELECT a.x FROM a, b WHERE a.x = b.y"))
        joins = nodes_of(plan, lp.LJoin)
        # predicate references both sides: the cross product turns into an
        # inner join so the executor can hash on the equi-keys
        assert joins[0].kind == "inner"
        assert joins[0].condition is not None
        assert not nodes_of(plan, lp.LFilter)

    def test_comma_join_results_match_explicit_join(self, db):
        db.execute("INSERT INTO a VALUES (1, 'p'), (2, 'q')")
        db.execute("INSERT INTO b VALUES (1, 'r'), (3, 's')")
        comma = db.execute("SELECT a.x, b.y FROM a, b WHERE a.x = b.y").rows()
        explicit = db.execute("SELECT a.x, b.y FROM a JOIN b ON a.x = b.y").rows()
        assert sorted(comma) == sorted(explicit)

    def test_pushdown_preserves_results(self, db):
        db.execute("INSERT INTO a VALUES (1, 'p'), (2, 'q')")
        db.execute("INSERT INTO b VALUES (1, 'r'), (3, 's')")
        rows = db.execute(
            "SELECT a.x, b.y FROM a, b WHERE a.x = 1 AND b.y = 3"
        ).rows()
        assert rows == [(1, 3)]


class TestGraphJoinUnfolding:
    def test_basic_unfold(self, db):
        plan = rewrite(
            plan_of(
                db,
                "SELECT a.x, b.y FROM a, b WHERE a.x REACHES b.y OVER e EDGE (s, d)",
            )
        )
        assert len(nodes_of(plan, lp.LGraphJoin)) == 1
        assert len(nodes_of(plan, lp.LGraphSelect)) == 0

    def test_unfold_through_pushed_filters(self, db):
        plan = rewrite(
            plan_of(
                db,
                "SELECT a.x FROM a, b WHERE a.tag = 'p' AND b.tag = 'q' "
                "AND a.x REACHES b.y OVER e EDGE (s, d)",
            )
        )
        graph_joins = nodes_of(plan, lp.LGraphJoin)
        assert len(graph_joins) == 1
        # the side filters survive inside the graph join's inputs
        assert nodes_of(graph_joins[0].left, lp.LFilter)
        assert nodes_of(graph_joins[0].right, lp.LFilter)

    def test_no_unfold_when_endpoints_on_one_side(self, db):
        plan = rewrite(
            plan_of(
                db,
                "SELECT a.x FROM a, b WHERE a.x REACHES a.x OVER e EDGE (s, d)",
            )
        )
        assert len(nodes_of(plan, lp.LGraphJoin)) == 0
        assert len(nodes_of(plan, lp.LGraphSelect)) == 1

    def test_no_unfold_for_single_table(self, db):
        plan = rewrite(
            plan_of(db, "SELECT a.x FROM a WHERE a.x REACHES a.x OVER e EDGE (s, d)")
        )
        assert len(nodes_of(plan, lp.LGraphJoin)) == 0

    def test_unfold_inside_derived_table(self, db):
        plan = rewrite(
            plan_of(
                db,
                "SELECT * FROM (SELECT a.x AS p, b.y AS q FROM a, b "
                "WHERE a.x REACHES b.y OVER e EDGE (s, d)) t WHERE t.p > 0",
            )
        )
        assert len(nodes_of(plan, lp.LGraphJoin)) == 1

    def test_three_way_cross_unfolds_outermost(self, db):
        plan = rewrite(
            plan_of(
                db,
                "SELECT 1 FROM a, a a2, b "
                "WHERE a.x REACHES b.y OVER e EDGE (s, d)",
            )
        )
        # ((a x a2) x b): source refs ⊆ left subtree, dest refs ⊆ right
        assert len(nodes_of(plan, lp.LGraphJoin)) == 1

    def test_rewrite_is_idempotent(self, db):
        once = rewrite(
            plan_of(
                db,
                "SELECT a.x, b.y FROM a, b WHERE a.x REACHES b.y OVER e EDGE (s, d)",
            )
        )
        twice = rewrite(once)
        assert len(nodes_of(twice, lp.LGraphJoin)) == 1

    def test_results_identical_with_and_without_join_form(self, db):
        db.execute("INSERT INTO a VALUES (1, 'p'), (2, 'q')")
        db.execute("INSERT INTO b VALUES (2, 'r'), (3, 's')")
        db.execute("INSERT INTO e VALUES (1, 2, 1), (2, 3, 1)")
        # join form (rewritten) vs select form over an pre-built cross
        join_form = db.execute(
            "SELECT a.x, b.y, CHEAPEST SUM(1) AS c FROM a, b "
            "WHERE a.x REACHES b.y OVER e EDGE (s, d) ORDER BY 1, 2"
        ).rows()
        select_form = db.execute(
            "SELECT t.x, t.y, CHEAPEST SUM(1) AS c "
            "FROM (SELECT a.x, b.y FROM a CROSS JOIN b) t "
            "WHERE t.x REACHES t.y OVER e EDGE (s, d) ORDER BY 1, 2"
        ).rows()
        assert join_form == select_form
