"""Tests for the LDBC-SNB-like generator and the Q13/Q14 workload."""

import numpy as np
import pytest

from repro.ldbc import (
    SCALE_FACTORS,
    TABLE1_SIZES,
    generate,
    make_database,
    random_pairs,
    run_q13,
    run_q13_batch,
    run_q14_variant,
    target_sizes,
)


class TestTargetSizes:
    def test_known_scale_factors_match_table1_ratio(self):
        for sf in SCALE_FACTORS:
            vertices, friendships = target_sizes(sf, scale=0.01)
            paper_vertices, paper_edges = TABLE1_SIZES[sf]
            assert vertices == pytest.approx(paper_vertices * 0.01, rel=0.01, abs=2)
            assert friendships * 2 == pytest.approx(
                paper_edges * 0.01, rel=0.01, abs=4
            )

    def test_interpolation_monotone(self):
        previous = (0, 0)
        for sf in (1, 2, 5, 20, 50, 200):
            sizes = target_sizes(sf, scale=0.01)
            assert sizes >= previous
            previous = sizes

    def test_minimum_floor(self):
        vertices, friendships = target_sizes(1, scale=1e-9)
        assert vertices >= 8 and friendships >= 8


class TestGenerate:
    def test_deterministic(self):
        a = generate(1, seed=5)
        b = generate(1, seed=5)
        assert np.array_equal(a.friend_src, b.friend_src)
        assert np.array_equal(a.weights, b.weights)

    def test_seed_changes_graph(self):
        a = generate(1, seed=5)
        b = generate(1, seed=6)
        assert not np.array_equal(a.friend_src, b.friend_src)

    def test_no_self_loops(self):
        network = generate(3)
        assert (network.friend_src != network.friend_dst).all()

    def test_no_duplicate_friendships(self):
        network = generate(3)
        pairs = set()
        for a, b in zip(network.friend_src, network.friend_dst):
            key = (min(a, b), max(a, b))
            assert key not in pairs
            pairs.add(key)

    def test_endpoints_are_persons(self):
        network = generate(1)
        ids = set(network.person_ids.tolist())
        assert set(network.friend_src.tolist()) <= ids
        assert set(network.friend_dst.tolist()) <= ids

    def test_directed_edges_double_friendships(self):
        # "the number of edges is actually double the amount of friendship
        # relationships ... as relationships are undirected whereas our
        # model assumes the graph is directed" (Section 4)
        network = generate(1)
        src, dst, days, weights = network.directed_edges()
        assert len(src) == 2 * network.num_friendships
        assert network.num_directed_edges == len(src)

    def test_weights_strictly_positive_and_quantized(self):
        network = generate(3)
        assert (network.weights > 0).all()
        scaled = network.weights * 10
        assert np.allclose(scaled, np.round(scaled))

    def test_weights_skewed_not_constant(self):
        network = generate(10)
        assert len(np.unique(network.weights)) > 5

    def test_creation_dates_in_range(self):
        network = generate(1)
        assert network.creation_days.min() >= 14_610
        assert network.creation_days.max() < 14_610 + 1095

    def test_degree_distribution_skewed(self):
        network = generate(10, skew=0.8)
        degrees = np.bincount(
            np.searchsorted(network.person_ids, network.friend_src)
        )
        # a skewed graph has a max degree well above the mean
        assert degrees.max() > 3 * max(degrees.mean(), 1)


class TestWorkload:
    @pytest.fixture(scope="class")
    def loaded(self):
        network = generate(1, seed=11)
        return network, make_database(network)

    def test_tables_populated(self, loaded):
        network, db = loaded
        assert db.execute("SELECT count(*) FROM persons").scalar() == network.num_persons
        assert (
            db.execute("SELECT count(*) FROM knows").scalar()
            == network.num_directed_edges
        )

    def test_q13_self_distance_zero(self, loaded):
        network, db = loaded
        person = int(network.person_ids[0])
        assert run_q13(db, person, person) == 0

    def test_q13_matches_symmetric_reverse(self, loaded):
        # friendships are symmetric, so distance(a, b) == distance(b, a)
        network, db = loaded
        for source, dest in random_pairs(network, 5, seed=3):
            assert run_q13(db, source, dest) == run_q13(db, dest, source)

    def test_q14_cost_at_least_hops(self, loaded):
        # every affinity weight is >= 0.1, scaled by 10 -> every edge costs
        # >= 1, so the weighted cost is >= the hop count
        network, db = loaded
        for source, dest in random_pairs(network, 5, seed=4):
            hops = run_q13(db, source, dest)
            weighted = run_q14_variant(db, source, dest)
            if hops is None:
                assert weighted is None
            else:
                assert weighted[0] >= hops

    def test_q14_float_variant_matches_scaled_int(self, loaded):
        network, db = loaded
        for source, dest in random_pairs(network, 5, seed=5):
            scaled = run_q14_variant(db, source, dest)
            float_ = run_q14_variant(db, source, dest, float_weights=True)
            if scaled is None:
                assert float_ is None
            else:
                assert float_[0] == pytest.approx(scaled[0] / 10.0)

    def test_batch_matches_individual(self, loaded):
        network, db = loaded
        pairs = random_pairs(network, 10, seed=6)
        batch_rows = {(s, d): c for s, d, c in run_q13_batch(db, pairs)}
        for source, dest in pairs:
            individual = run_q13(db, source, dest)
            if individual is None:
                assert (source, dest) not in batch_rows
            else:
                assert batch_rows[(source, dest)] == individual

    def test_random_pairs_deterministic(self, loaded):
        network, _ = loaded
        assert random_pairs(network, 4, seed=9) == random_pairs(network, 4, seed=9)

    def test_random_pairs_are_person_ids(self, loaded):
        network, _ = loaded
        ids = set(network.person_ids.tolist())
        for source, dest in random_pairs(network, 10):
            assert source in ids and dest in ids
