"""Property-based correctness: BFS / Dijkstra / bidirectional search vs
a brute-force Bellman-Ford reference on random graphs.

For each random graph the suite checks, across algorithms and worker
counts:

* costs equal the reference distances exactly (int) / to 1e-9 (float);
* returned paths are *valid* — they start at the source, end at the
  destination, chain edge-to-edge through the edge list — and
  *cost-consistent* — the sum of their edge weights equals the reported
  cost.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.graph import GraphLibrary


# ---------------------------------------------------------------------------
# the reference implementation (deliberately naive)
# ---------------------------------------------------------------------------
def bellman_ford(num_vertices: int, edges: list[tuple[int, int, float]], source: int):
    """Plain |V|-1-round edge relaxation; None marks unreachable."""
    dist: list = [None] * num_vertices
    dist[source] = 0
    for _ in range(max(num_vertices - 1, 1)):
        changed = False
        for u, v, w in edges:
            if dist[u] is not None and (dist[v] is None or dist[u] + w < dist[v]):
                dist[v] = dist[u] + w
                changed = True
        if not changed:
            break
    return dist


def random_graph(rng: random.Random, *, integral: bool):
    n = rng.randint(2, 24)
    m = rng.randint(0, 4 * n)
    edges = []
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        weight = rng.randint(1, 9) if integral else rng.uniform(0.1, 5.0)
        edges.append((u, v, weight))
    # guarantee at least one edge so the library has a non-empty domain
    if not edges:
        edges.append((0, min(1, n - 1), 1 if integral else 1.0))
    return n, edges


def build_library(edges, *, weighted: bool):
    src = np.asarray([e[0] for e in edges], dtype=np.int64)
    dst = np.asarray([e[1] for e in edges], dtype=np.int64)
    if not weighted:
        return GraphLibrary(src, dst)
    weights = np.asarray([e[2] for e in edges])
    return GraphLibrary(src, dst, weights)


def check_paths(result, edges, sources, dests, costs_are_hops: bool):
    """Paths are valid edge chains and their weight sums match costs."""
    for i in range(len(sources)):
        path = result.paths[i]
        if not result.connected[i]:
            assert path is None
            continue
        assert path is not None
        source, dest = int(sources[i]), int(dests[i])
        if len(path) == 0:
            assert source == dest and result.costs[i] == 0
            continue
        rows = [edges[j] for j in path]
        assert rows[0][0] == source
        assert rows[-1][1] == dest
        for (_, mid, _), (nxt, _, _) in zip(rows, rows[1:]):
            assert mid == nxt, "path edges do not chain"
        total = len(rows) if costs_are_hops else sum(w for _, _, w in rows)
        assert total == pytest.approx(result.costs[i])


def query_pairs(rng: random.Random, n: int, count: int = 40):
    # mix in-domain pairs with out-of-domain vertex ids (n, n+1, ...)
    sources = np.asarray(
        [rng.randrange(n + 2) for _ in range(count)], dtype=np.int64
    )
    dests = np.asarray([rng.randrange(n + 2) for _ in range(count)], dtype=np.int64)
    return sources, dests


# ---------------------------------------------------------------------------
# BFS (unweighted): CHEAPEST SUM(1) semantics
# ---------------------------------------------------------------------------
class TestUnweightedAgainstReference:
    @pytest.mark.parametrize("seed", range(12))
    def test_bfs_costs_and_paths(self, seed):
        rng = random.Random(seed)
        n, edges = random_graph(rng, integral=True)
        hop_edges = [(u, v, 1) for u, v, _ in edges]
        library = build_library(edges, weighted=False)
        sources, dests = query_pairs(rng, n)
        result = library.solve(sources, dests, want_cost=True, want_path=True)
        for i in range(len(sources)):
            s, d = int(sources[i]), int(dests[i])
            # endpoints must be vertices (= appear in S ∪ D) to connect
            src_known = s < n and library.domain.encode(np.asarray([s]))[0] >= 0
            dst_known = d < n and library.domain.encode(np.asarray([d]))[0] >= 0
            if not (src_known and dst_known):
                assert not result.connected[i]
                continue
            reference = bellman_ford(n, hop_edges, s)[d]
            if reference is None:
                assert not result.connected[i]
            else:
                assert result.connected[i]
                assert result.costs[i] == reference
        check_paths(result, edges, sources, dests, costs_are_hops=True)

    @pytest.mark.parametrize("seed", range(6))
    def test_bidirectional_matches_bfs(self, seed):
        rng = random.Random(100 + seed)
        n, edges = random_graph(rng, integral=True)
        library = build_library(edges, weighted=False)
        sources, dests = query_pairs(rng, n)
        src_ids, dst_ids, _ = library.encode_endpoints(sources, dests)
        plain = library.solve_encoded(src_ids, dst_ids, want_cost=True)
        bidi = library.solve_encoded(
            src_ids, dst_ids, want_cost=True, algorithm="bidirectional"
        )
        assert np.array_equal(plain.connected, bidi.connected)
        assert np.array_equal(plain.costs, bidi.costs)


# ---------------------------------------------------------------------------
# Dijkstra (weighted): radix (int) and binary heap (float)
# ---------------------------------------------------------------------------
class TestWeightedAgainstReference:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("integral", [True, False])
    def test_dijkstra_costs_and_paths(self, seed, integral):
        rng = random.Random(1000 * (2 if integral else 3) + seed)
        n, edges = random_graph(rng, integral=integral)
        library = build_library(edges, weighted=True)
        sources, dests = query_pairs(rng, n)
        result = library.solve(sources, dests, want_cost=True, want_path=True)
        reference_cache: dict[int, list] = {}
        for i in range(len(sources)):
            s, d = int(sources[i]), int(dests[i])
            src_known = s < n and library.domain.encode(np.asarray([s]))[0] >= 0
            dst_known = d < n and library.domain.encode(np.asarray([d]))[0] >= 0
            if not (src_known and dst_known):
                assert not result.connected[i]
                continue
            if s not in reference_cache:
                reference_cache[s] = bellman_ford(n, edges, s)
            reference = reference_cache[s][d]
            if reference is None:
                assert not result.connected[i]
            else:
                assert result.connected[i]
                assert result.costs[i] == pytest.approx(reference, abs=1e-9)
        check_paths(result, edges, sources, dests, costs_are_hops=False)

    @pytest.mark.parametrize("seed", range(6))
    def test_radix_and_binary_queues_agree(self, seed):
        rng = random.Random(7000 + seed)
        n, edges = random_graph(rng, integral=True)
        library = build_library(edges, weighted=True)
        sources, dests = query_pairs(rng, n)
        radix = library.solve(sources, dests, want_cost=True, queue="radix")
        binary = library.solve(sources, dests, want_cost=True, queue="binary")
        assert np.array_equal(radix.connected, binary.connected)
        assert np.array_equal(radix.costs, binary.costs)


# ---------------------------------------------------------------------------
# the parallel partitioning must not change any answer
# ---------------------------------------------------------------------------
class TestWorkerInvariance:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("weighted", [False, True])
    def test_workers_do_not_change_results(self, seed, weighted):
        rng = random.Random(500 + seed)
        n, edges = random_graph(rng, integral=True)
        library = build_library(edges, weighted=weighted)
        sources, dests = query_pairs(rng, n, count=64)
        base = library.solve(sources, dests, want_cost=True, want_path=True)
        for workers in (2, 4):
            run = library.solve(
                sources, dests, want_cost=True, want_path=True, workers=workers
            )
            assert np.array_equal(base.connected, run.connected)
            assert np.array_equal(base.costs, run.costs)
            for p1, p2 in zip(base.paths, run.paths):
                assert (p1 is None) == (p2 is None)
                if p1 is not None:
                    assert np.array_equal(p1, p2)


@pytest.mark.slow
class TestLargeRandomSweep:
    """Wider sweep kept out of tier-1 (`pytest -m slow` to run)."""

    @pytest.mark.parametrize("seed", range(40))
    def test_weighted_sweep(self, seed):
        rng = random.Random(90_000 + seed)
        n, edges = random_graph(rng, integral=seed % 2 == 0)
        library = build_library(edges, weighted=True)
        sources, dests = query_pairs(rng, n, count=80)
        result = library.solve(sources, dests, want_cost=True, want_path=True)
        check_paths(result, edges, sources, dests, costs_are_hops=False)
