"""Unit tests for Schema, Table and Catalog."""

import pytest

from repro.errors import CatalogError, TypeError_
from repro.storage import Catalog, Column, DataType, Schema, Table


class TestSchema:
    def test_case_insensitive_lookup(self):
        schema = Schema([("Id", DataType.BIGINT), ("Name", DataType.VARCHAR)])
        assert schema.index_of("ID") == 0
        assert schema.type_of("name") == DataType.VARCHAR

    def test_names_normalized_lower(self):
        schema = Schema([("FirstName", DataType.VARCHAR)])
        assert schema.names() == ["firstname"]

    def test_duplicate_raises(self):
        with pytest.raises(CatalogError):
            Schema([("a", DataType.INTEGER), ("A", DataType.INTEGER)])

    def test_unknown_column_raises(self):
        schema = Schema([("a", DataType.INTEGER)])
        with pytest.raises(CatalogError):
            schema.index_of("b")

    def test_has(self):
        schema = Schema([("a", DataType.INTEGER)])
        assert schema.has("A") and not schema.has("b")

    def test_equality(self):
        a = Schema([("x", DataType.INTEGER)])
        b = Schema([("x", DataType.INTEGER)])
        assert a == b


class TestTable:
    def _table(self):
        return Table("t", Schema([("a", DataType.INTEGER), ("b", DataType.VARCHAR)]))

    def test_starts_empty(self):
        assert len(self._table()) == 0

    def test_insert_rows(self):
        table = self._table()
        assert table.insert_rows([(1, "x"), (2, "y")]) == 2
        assert table.to_rows() == [(1, "x"), (2, "y")]

    def test_insert_empty_noop(self):
        table = self._table()
        version = table.version
        assert table.insert_rows([]) == 0
        assert table.version == version

    def test_insert_wrong_width_raises(self):
        with pytest.raises(TypeError_):
            self._table().insert_rows([(1,)])

    def test_insert_bad_type_raises(self):
        with pytest.raises(TypeError_):
            self._table().insert_rows([("not-int", "x")])

    def test_version_bumps_on_insert(self):
        table = self._table()
        v0 = table.version
        table.insert_rows([(1, "x")])
        assert table.version == v0 + 1

    def test_truncate(self):
        table = self._table()
        table.insert_rows([(1, "x")])
        table.truncate()
        assert len(table) == 0

    def test_insert_columns(self):
        table = self._table()
        table.insert_columns(
            [
                Column.from_values(DataType.INTEGER, [1, 2]),
                Column.from_values(DataType.VARCHAR, ["x", "y"]),
            ]
        )
        assert len(table) == 2

    def test_insert_columns_type_mismatch(self):
        table = self._table()
        with pytest.raises(TypeError_):
            table.insert_columns(
                [
                    Column.from_values(DataType.DOUBLE, [1.0]),
                    Column.from_values(DataType.VARCHAR, ["x"]),
                ]
            )

    def test_insert_columns_ragged(self):
        table = self._table()
        with pytest.raises(TypeError_):
            table.insert_columns(
                [
                    Column.from_values(DataType.INTEGER, [1, 2]),
                    Column.from_values(DataType.VARCHAR, ["x"]),
                ]
            )

    def test_column_accessor(self):
        table = self._table()
        table.insert_rows([(5, "z")])
        assert table.column("a").to_pylist() == [5]


class TestCatalog:
    def test_create_and_get(self):
        catalog = Catalog()
        catalog.create_table("t", Schema([("a", DataType.INTEGER)]))
        assert catalog.get("T").name == "t"

    def test_duplicate_raises(self):
        catalog = Catalog()
        catalog.create_table("t", Schema([("a", DataType.INTEGER)]))
        with pytest.raises(CatalogError):
            catalog.create_table("t", Schema([("a", DataType.INTEGER)]))

    def test_replace(self):
        catalog = Catalog()
        catalog.create_table("t", Schema([("a", DataType.INTEGER)]))
        catalog.create_table("t", Schema([("b", DataType.INTEGER)]), replace=True)
        assert catalog.get("t").schema.names() == ["b"]

    def test_drop(self):
        catalog = Catalog()
        catalog.create_table("t", Schema([("a", DataType.INTEGER)]))
        catalog.drop_table("t")
        assert not catalog.has("t")

    def test_drop_unknown_raises(self):
        with pytest.raises(CatalogError):
            Catalog().drop_table("nope")

    def test_get_unknown_raises(self):
        with pytest.raises(CatalogError):
            Catalog().get("nope")

    def test_table_names_sorted(self):
        catalog = Catalog()
        for name in ("b", "a", "c"):
            catalog.create_table(name, Schema([("x", DataType.INTEGER)]))
        assert catalog.table_names() == ["a", "b", "c"]
