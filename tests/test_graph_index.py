"""Graph index tests — the paper's Section 6 future work, implemented:
persistent CSRs keyed on the edge table, invalidated by updates."""

import pytest

from repro import Database
from repro.errors import CatalogError


@pytest.fixture
def db(chain_db):
    return chain_db


class TestLifecycle:
    def test_create_and_list(self, db):
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        assert db.graph_indices.names() == ["gi"]

    def test_duplicate_name_rejected(self, db):
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        with pytest.raises(CatalogError, match="already exists"):
            db.execute("CREATE GRAPH INDEX gi ON edges EDGE (d, s)")

    def test_unknown_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE GRAPH INDEX gi ON nope EDGE (s, d)")

    def test_unknown_column_rejected(self, db):
        with pytest.raises(CatalogError, match="no column"):
            db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, nope)")

    def test_drop(self, db):
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        db.execute("DROP GRAPH INDEX gi")
        assert db.graph_indices.names() == []

    def test_drop_unknown_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP GRAPH INDEX nope")


class TestLookupSemantics:
    def test_lookup_hits_for_matching_spec(self, db):
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        assert db.lookup_graph_index("edges", "s", "d") is not None

    def test_lookup_misses_for_other_orientation(self, db):
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        assert db.lookup_graph_index("edges", "d", "s") is None

    def test_lookup_misses_without_index(self, db):
        assert db.lookup_graph_index("edges", "s", "d") is None

    def test_cache_object_reused_until_update(self, db):
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        first = db.lookup_graph_index("edges", "s", "d")
        second = db.lookup_graph_index("edges", "s", "d")
        assert first is second

    def test_cache_invalidated_by_insert(self, db):
        # "they also need to be amenable to the updates on the underlying
        # tables" (Section 6)
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        before = db.lookup_graph_index("edges", "s", "d")
        db.execute("INSERT INTO edges VALUES (5, 6, 1)")
        after = db.lookup_graph_index("edges", "s", "d")
        assert before is not after
        assert after.csr.num_edges == before.csr.num_edges + 1


class TestQueriesThroughIndex:
    def _q13(self, db, a, b):
        return db.execute(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER edges EDGE (s, d)",
            (a, b),
        ).scalar()

    def test_same_answers_with_and_without_index(self, db):
        plain = self._q13(db, 1, 5)
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        assert self._q13(db, 1, 5) == plain

    def test_weighted_query_reuses_indexed_structure(self, db):
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        cost = db.execute(
            "SELECT CHEAPEST SUM(e: w) WHERE 1 REACHES 5 OVER edges e EDGE (s, d)"
        ).scalar()
        assert cost == 4

    def test_query_sees_updates_after_invalidation(self, db):
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        assert self._q13(db, 5, 1) is None
        db.execute("INSERT INTO edges VALUES (5, 1, 1)")
        assert self._q13(db, 5, 1) == 1

    def test_filtered_edge_expression_bypasses_index(self, db):
        # the index covers the bare table; a filtered edge expression must
        # not use it (different graph)
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        cost = db.execute(
            "SELECT CHEAPEST SUM(f: 1) WHERE 1 REACHES 5 "
            "OVER (SELECT * FROM edges WHERE w < 10) f EDGE (s, d)"
        ).scalar()
        assert cost == 4  # the shortcut (w=10) is excluded

    def test_paths_correct_through_index(self, db):
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        rows = db.execute(
            "SELECT CHEAPEST SUM(e: w) AS (c, p) "
            "WHERE 1 REACHES 5 OVER edges e EDGE (s, d)"
        ).rows()
        cost, path = rows[0]
        assert cost == 4 and [r[:2] for r in path.to_rows()] == [
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
        ]
