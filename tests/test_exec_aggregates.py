"""Aggregation, GROUP BY, HAVING, set operations, recursive CTEs."""

import pytest

from repro import Database
from repro.errors import ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.executescript(
        """
        CREATE TABLE sales (region VARCHAR, product VARCHAR, amount INT);
        INSERT INTO sales VALUES
            ('eu', 'a', 10), ('eu', 'b', 20), ('us', 'a', 5),
            ('us', 'b', 15), ('us', 'b', NULL);
        """
    )
    return database


class TestGlobalAggregates:
    def test_count_star(self, db):
        assert db.execute("SELECT count(*) FROM sales").scalar() == 5

    def test_count_column_skips_nulls(self, db):
        assert db.execute("SELECT count(amount) FROM sales").scalar() == 4

    def test_sum(self, db):
        assert db.execute("SELECT sum(amount) FROM sales").scalar() == 50

    def test_avg(self, db):
        assert db.execute("SELECT avg(amount) FROM sales").scalar() == 12.5

    def test_min_max(self, db):
        assert db.execute("SELECT min(amount), max(amount) FROM sales").rows() == [
            (5, 20)
        ]

    def test_empty_input(self, db):
        rows = db.execute(
            "SELECT count(*), sum(amount) FROM sales WHERE region = 'jp'"
        ).rows()
        assert rows == [(0, None)]

    def test_count_distinct(self, db):
        assert db.execute("SELECT count(DISTINCT region) FROM sales").scalar() == 2

    def test_sum_distinct(self, db):
        db.execute("CREATE TABLE v (x INT)")
        db.execute("INSERT INTO v VALUES (1), (1), (2)")
        assert db.execute("SELECT sum(DISTINCT x) FROM v").scalar() == 3

    def test_min_of_strings(self, db):
        assert db.execute("SELECT min(product) FROM sales").scalar() == "a"

    def test_aggregate_inside_expression(self, db):
        assert db.execute("SELECT sum(amount) * 2 FROM sales").scalar() == 100


class TestGroupBy:
    def test_group_counts(self, db):
        rows = db.execute(
            "SELECT region, count(*) FROM sales GROUP BY region ORDER BY region"
        ).rows()
        assert rows == [("eu", 2), ("us", 3)]

    def test_group_by_two_keys(self, db):
        rows = db.execute(
            "SELECT region, product, sum(amount) FROM sales "
            "GROUP BY region, product ORDER BY region, product"
        ).rows()
        assert rows == [("eu", "a", 10), ("eu", "b", 20), ("us", "a", 5), ("us", "b", 15)]

    def test_group_by_expression(self, db):
        rows = db.execute(
            "SELECT region || '!', count(*) FROM sales GROUP BY region || '!' "
            "ORDER BY 1"
        ).rows()
        assert rows == [("eu!", 2), ("us!", 3)]

    def test_null_forms_its_own_group(self, db):
        rows = db.execute(
            "SELECT amount, count(*) FROM sales GROUP BY amount ORDER BY amount"
        ).rows()
        assert (None, 1) in rows

    def test_having(self, db):
        rows = db.execute(
            "SELECT region FROM sales GROUP BY region HAVING count(*) > 2"
        ).rows()
        assert rows == [("us",)]

    def test_having_on_aggregate_not_in_select(self, db):
        rows = db.execute(
            "SELECT region FROM sales GROUP BY region HAVING sum(amount) = 30 "
        ).rows()
        assert rows == [("eu",)]

    def test_order_by_aggregate_alias(self, db):
        rows = db.execute(
            "SELECT region, sum(amount) AS total FROM sales "
            "GROUP BY region ORDER BY total DESC"
        ).rows()
        assert rows == [("eu", 30), ("us", 20)]


class TestSetOps:
    def test_union_dedups(self, db):
        rows = db.execute(
            "SELECT region FROM sales UNION SELECT region FROM sales ORDER BY 1"
        ).rows()
        assert rows == [("eu",), ("us",)]

    def test_union_all_keeps_duplicates(self, db):
        assert (
            len(
                db.execute(
                    "SELECT region FROM sales UNION ALL SELECT region FROM sales"
                ).rows()
            )
            == 10
        )

    def test_union_promotes_types(self, db):
        rows = db.execute("SELECT 1 UNION SELECT 2.5 ORDER BY 1").rows()
        assert rows == [(1.0,), (2.5,)]

    def test_except(self, db):
        rows = db.execute(
            "SELECT region FROM sales EXCEPT SELECT 'us' ORDER BY 1"
        ).rows()
        assert rows == [("eu",)]

    def test_intersect(self, db):
        rows = db.execute(
            "SELECT region FROM sales INTERSECT SELECT 'us'"
        ).rows()
        assert rows == [("us",)]

    def test_chained_setops(self, db):
        rows = db.execute("SELECT 1 UNION SELECT 2 UNION SELECT 3 ORDER BY 1").rows()
        assert rows == [(1,), (2,), (3,)]


class TestRecursiveCtes:
    def test_counter(self, db):
        rows = db.execute(
            "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM r "
            "WHERE n < 5) SELECT n FROM r ORDER BY n"
        ).rows()
        assert rows == [(1,), (2,), (3,), (4,), (5,)]

    def test_union_distinct_terminates_on_cycle(self, db):
        db.execute("CREATE TABLE g (s INT, d INT)")
        db.execute("INSERT INTO g VALUES (1, 2), (2, 3), (3, 1)")
        rows = db.execute(
            "WITH RECURSIVE reach(v) AS ("
            "  SELECT 1 UNION SELECT g.d FROM reach, g WHERE g.s = reach.v"
            ") SELECT v FROM reach ORDER BY v"
        ).rows()
        assert rows == [(1,), (2,), (3,)]

    def test_runaway_union_all_guarded(self, db):
        db.execute("CREATE TABLE g (s INT, d INT)")
        db.execute("INSERT INTO g VALUES (1, 1)")
        with pytest.raises(ExecutionError, match="iterations"):
            db.execute(
                "WITH RECURSIVE r(v) AS ("
                "  SELECT 1 UNION ALL SELECT g.d FROM r, g WHERE g.s = r.v"
                ") SELECT count(*) FROM r"
            )

    def test_transitive_closure_matches_reaches(self, db):
        db.execute("CREATE TABLE g (s INT, d INT)")
        db.execute("INSERT INTO g VALUES (1,2),(2,3),(3,4),(10,11)")
        recursive = db.execute(
            "WITH RECURSIVE reach(v) AS ("
            "  SELECT 1 UNION SELECT g.d FROM reach, g WHERE g.s = reach.v"
            ") SELECT v FROM reach WHERE v <> 1 ORDER BY v"
        ).rows()
        db.execute("CREATE TABLE candidates (v INT)")
        db.execute("INSERT INTO candidates VALUES (2),(3),(4),(10),(11)")
        via_reaches = db.execute(
            "SELECT v FROM candidates WHERE 1 REACHES v OVER g EDGE (s, d) ORDER BY v"
        ).rows()
        assert recursive == via_reaches

    def test_nonrecursive_cte_multiple_references(self, db):
        rows = db.execute(
            "WITH c AS (SELECT 1 AS x UNION SELECT 2) "
            "SELECT a.x, b.x FROM c a, c b WHERE a.x < b.x"
        ).rows()
        assert rows == [(1, 2)]

    def test_recursive_cte_referenced_in_outer_join(self, db):
        rows = db.execute(
            "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM r "
            "WHERE n < 3) SELECT count(*) FROM r a, r b"
        ).rows()
        assert rows == [(9,)]
