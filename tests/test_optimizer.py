"""Cost-based optimizer: statistics, physical plans, pushdown shapes,
join reordering, plan-cache parameterization and materialization guards.
"""

import io

import pytest

from repro import Database
from repro.cli import Shell
from repro.errors import CatalogError, ExecutionError, ResourceLimitError


@pytest.fixture
def social():
    db = Database()
    db.executescript(
        """
        CREATE TABLE persons (id INT, name VARCHAR);
        CREATE TABLE knows (p1 INT, p2 INT, w DOUBLE);
        INSERT INTO persons VALUES (1,'a'),(2,'b'),(3,'c'),(4,'d');
        INSERT INTO knows VALUES (1,2,1.0),(2,3,1.0),(3,4,2.0);
        """
    )
    return db


# ---------------------------------------------------------------------------
# ANALYZE and statistics
# ---------------------------------------------------------------------------
class TestAnalyze:
    def test_analyze_all_tables(self, social):
        result = social.execute("ANALYZE")
        assert result.rowcount == 2
        stats = social.table_stats()
        assert stats["persons"].row_count == 4
        assert stats["knows"].columns["w"].distinct == 2

    def test_analyze_single_table(self, social):
        assert social.execute("ANALYZE persons").rowcount == 1
        assert "knows" not in social.table_stats()

    def test_analyze_unknown_table_raises(self, social):
        with pytest.raises(CatalogError):
            social.execute("ANALYZE nope")

    def test_column_stats_contents(self, social):
        social.execute("INSERT INTO persons VALUES (9, NULL)")
        social.execute("ANALYZE persons")
        col = social.table_stats()["persons"].columns
        assert col["id"].min_value == 1 and col["id"].max_value == 9
        assert col["id"].distinct == 5
        assert col["name"].null_count == 1

    def test_write_refreshes_row_count_and_marks_stale(self, social):
        social.execute("ANALYZE")
        social.execute("INSERT INTO persons VALUES (5, 'e')")
        stats = social.table_stats()["persons"]
        assert stats.row_count == 5
        assert stats.stale

    def test_drop_table_drops_stats(self, social):
        social.execute("ANALYZE")
        social.execute("DROP TABLE persons")
        assert "persons" not in social.table_stats()

    def test_python_analyze_helper(self, social):
        assert sorted(social.analyze()) == ["knows", "persons"]

    def test_analyze_unrelated_table_keeps_plans(self, social):
        sql = "SELECT id FROM persons WHERE id > 2"
        social.execute(sql)
        social.execute("ANALYZE knows")
        social.execute(sql)  # stats marker of persons unchanged: still hot
        assert social.plan_cache.stats()["hits"] >= 1

    def test_analyze_bumps_marker_and_invalidates_plans(self, social):
        sql = "SELECT id FROM persons WHERE id > 2"
        social.execute(sql)
        assert social.plan_cache.contains(sql)
        social.execute("ANALYZE")
        social.execute(sql)  # revalidation fails -> re-optimized
        stats = social.plan_cache.stats()
        assert stats["invalidations"] >= 1


# ---------------------------------------------------------------------------
# EXPLAIN / physical plans
# ---------------------------------------------------------------------------
class TestPhysicalExplain:
    def test_estimated_rows_rendered(self, social):
        text = social.explain("SELECT id FROM persons WHERE id > 2")
        assert "est_rows=" in text and "cost=" in text
        assert "Scan persons" in text

    def test_hash_join_shows_build_side(self, social):
        text = social.explain(
            "SELECT p.name FROM persons p JOIN knows k ON p.id = k.p1"
        )
        assert "HashJoin" in text and "build=" in text

    def test_filter_pushed_below_join(self, social):
        text = social.explain(
            "SELECT p.name FROM persons p JOIN knows k ON p.id = k.p1 "
            "WHERE p.id > 2"
        )
        join_line = next(i for i, l in enumerate(text.splitlines()) if "HashJoin" in l)
        filter_line = next(i for i, l in enumerate(text.splitlines()) if "Filter" in l)
        assert filter_line > join_line  # filter sits under the join

    def test_three_way_reorder_avoids_cross_product(self, social):
        # syntactic order starts with persons x persons; the optimizer
        # reorders so every join is an equi hash join
        text = social.explain(
            "SELECT a.name, b.name FROM persons a, persons b, knows k "
            "WHERE a.id = k.p1 AND k.p2 = b.id"
        )
        assert "CrossJoin" not in text
        assert text.count("HashJoin") == 2

    def test_projection_pruning_narrows_scan(self, social):
        text = social.explain("SELECT p1 FROM knows")
        scan_line = next(l for l in text.splitlines() if "Scan knows" in l)
        assert "w" not in scan_line.split("->")[1]

    def test_pruning_disabled_without_optimizer(self, social):
        baseline = Database(optimizer=False)
        baseline.executescript(
            "CREATE TABLE knows (p1 INT, p2 INT, w DOUBLE);"
            "INSERT INTO knows VALUES (1,2,1.0)"
        )
        text = baseline.explain("SELECT p1 FROM knows")
        scan_line = next(l for l in text.splitlines() if "Scan knows" in l)
        assert "w" in scan_line.split("->")[1]

    def test_filter_pushed_into_graph_select_input(self, social):
        text = social.explain(
            "SELECT * FROM (SELECT p.id, CHEAPEST SUM(1) AS hops FROM persons p "
            "WHERE p.id REACHES 4 OVER knows EDGE (p1, p2)) q WHERE q.id < 3"
        )
        lines = text.splitlines()
        graph_line = next(i for i, l in enumerate(lines) if "GraphSelect" in l)
        filter_lines = [i for i, l in enumerate(lines) if "Filter" in l]
        assert any(i > graph_line for i in filter_lines)

    def test_profile_reports_estimated_vs_actual(self, social):
        _, report = social.profile("SELECT id FROM persons WHERE id > 2")
        assert "rows=" in report and "est_rows=" in report

    def test_no_pushdown_below_scalar_aggregate(self, social):
        # a scalar aggregate emits one row even over empty input, so a
        # constant-false predicate above it must NOT move below it
        sql = "SELECT * FROM (SELECT count(*) AS c FROM persons) x WHERE 1 = 0"
        assert social.execute(sql).rows() == []
        sql = "SELECT * FROM (SELECT max(id) AS m FROM persons) x WHERE 1 = 0"
        assert social.execute(sql).rows() == []
        # grouped aggregates still allow group-key pushdown
        sql = (
            "SELECT * FROM (SELECT id, count(*) AS n FROM persons "
            "GROUP BY id) x WHERE x.id = 2"
        )
        assert social.execute(sql).rows() == [(2, 1)]


# ---------------------------------------------------------------------------
# plan-cache parameterization
# ---------------------------------------------------------------------------
class TestParameterization:
    # The normalized plan is built lazily, once a *second* distinct text
    # maps onto the same key, so statement three is the first shared hit.
    def test_literal_values_still_correct(self, social):
        assert social.execute("SELECT id FROM persons WHERE id = 2").rows() == [(2,)]
        assert social.execute("SELECT id FROM persons WHERE id = 3").rows() == [(3,)]
        assert social.execute("SELECT id FROM persons WHERE id = 4").rows() == [(4,)]
        assert social.plan_cache.stats()["normalized_hits"] >= 1

    def test_one_off_statements_build_no_normalized_plan(self, social):
        social.execute("SELECT id FROM persons WHERE id = 2")
        assert social.plan_cache.stats()["normalized_entries"] == 0

    def test_string_literals_normalize(self, social):
        for name, id_ in (("'b'", 2), ("'c'", 3), ("'d'", 4)):
            assert social.execute(
                f"SELECT id FROM persons WHERE name = {name}"
            ).rows() == [(id_,)]
        assert social.plan_cache.stats()["normalized_hits"] >= 1

    def test_mixed_params_and_literals(self, social):
        rows = social.execute(
            "SELECT id FROM persons WHERE id = ? OR id = 4", (1,)
        ).rows()
        assert sorted(rows) == [(1,), (4,)]
        rows = social.execute(
            "SELECT id FROM persons WHERE id = ? OR id = 3", (2,)
        ).rows()
        assert sorted(rows) == [(2,), (3,)]

    def test_missing_param_error_counts_user_params_only(self, social):
        # populate the normalized index with two shape-identical texts
        social.execute("SELECT id FROM persons WHERE id = 1 AND id > ?", (0,))
        social.execute("SELECT id FROM persons WHERE id = 2 AND id > ?", (0,))
        with pytest.raises(ExecutionError, match="at least 1 parameter"):
            social.execute("SELECT id FROM persons WHERE id = 3 AND id > ?")

    def test_insert_mixed_numeric_literals_promote(self):
        db = Database()
        db.execute("CREATE TABLE t (v DOUBLE)")
        db.execute("INSERT INTO t VALUES (1), (2.5)")  # INT then DOUBLE
        assert db.execute("SELECT v FROM t ORDER BY 1").rows() == [(1.0,), (2.5,)]

    def test_insert_values_share_plan(self, social):
        social.execute("INSERT INTO persons VALUES (7, 'g')")
        social.execute("INSERT INTO persons VALUES (8, 'h')")
        social.execute("INSERT INTO persons VALUES (9, 'i')")
        assert social.execute("SELECT count(*) FROM persons").scalar() == 7
        assert social.plan_cache.stats()["normalized_hits"] >= 1

    def test_trailing_ordinal_after_expression_kept(self):
        # ORDER BY a, 2 — the ordinal after a non-integer sort key must
        # keep its value even when another literal is normalized away
        db = Database()
        db.execute("CREATE TABLE s (a INT, b INT)")
        db.execute(
            "INSERT INTO s VALUES (1, 9), (1, 1), (2, 8), (2, 3), (3, 5), (3, 4)"
        )
        template = "SELECT a, b FROM s WHERE a = {} ORDER BY a, 2 LIMIT 1"
        assert db.execute(template.format(1)).rows() == [(1, 1)]
        assert db.execute(template.format(2)).rows() == [(2, 3)]
        # third distinct literal: served from the shared normalized plan
        assert db.execute(template.format(3)).rows() == [(3, 4)]
        assert db.plan_cache.stats()["normalized_hits"] >= 1

    def test_normalize_ordinal_token_rules(self):
        from repro.sql.normalize import normalize_statement

        key, slots = normalize_statement(
            "SELECT a FROM t WHERE a = 5 ORDER BY a, 2"
        )
        assert "ORDER BY a , 2 --" in key
        assert slots == [("lit", 5)]
        # commas inside function calls do not create ordinal positions
        key, slots = normalize_statement(
            "SELECT a FROM t WHERE a = 5 ORDER BY coalesce(b, 0), 2"
        )
        assert ", 2 --" in key
        assert ("lit", 0) in slots and ("lit", 2) not in slots
        # a subquery's ORDER BY scope ends at its closing parenthesis
        key, slots = normalize_statement(
            "SELECT * FROM (SELECT a FROM t ORDER BY 1) x WHERE a = 7"
        )
        assert "ORDER BY 1" in key
        assert slots == [("lit", 7)]

    def test_limit_and_ordinals_not_normalized(self, social):
        two = social.execute("SELECT id FROM persons ORDER BY 1 LIMIT 2").rows()
        three = social.execute("SELECT id FROM persons ORDER BY 1 LIMIT 3").rows()
        assert len(two) == 2 and len(three) == 3
        assert two == [(1,), (2,)]

    def test_literal_types_never_share_a_plan(self, social):
        from repro.sql.normalize import normalize_statement

        int_key, _ = normalize_statement("SELECT id FROM persons WHERE id = 1")
        str_key, _ = normalize_statement("SELECT id FROM persons WHERE id = 'x'")
        assert int_key != str_key

    def test_cheapest_sum_constant_not_normalized(self, social):
        hops = social.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 4 OVER knows EDGE (p1, p2)"
        ).scalar()
        assert hops == 3

    def test_normalized_entries_invalidated_by_dml(self, social):
        social.execute("SELECT id FROM persons WHERE id = 1")
        social.execute("SELECT id FROM persons WHERE id = 2")
        social.execute("SELECT id FROM persons WHERE id = 3")
        before = social.plan_cache.stats()["normalized_entries"]
        assert before >= 1
        social.execute("INSERT INTO persons VALUES (10, 'j')")
        assert social.execute(
            "SELECT id FROM persons WHERE id = 10"
        ).rows() == [(10,)]

    def test_parameterize_off(self):
        db = Database(parameterize=False)
        db.execute("CREATE TABLE t (x INT)")
        db.execute("SELECT x FROM t WHERE x = 1")
        db.execute("SELECT x FROM t WHERE x = 2")
        stats = db.plan_cache.stats()
        assert stats["normalized_hits"] == 0
        assert stats["normalized_entries"] == 0


# ---------------------------------------------------------------------------
# materialization guards (MAX_CROSS_ROWS on every fallback path)
# ---------------------------------------------------------------------------
class TestResourceLimits:
    @pytest.fixture
    def big(self):
        db = Database()
        db.execute("CREATE TABLE a (x INT)")
        db.execute("CREATE TABLE b (y INT)")
        db.table("a").insert_rows([(i,) for i in range(6000)])
        db.table("b").insert_rows([(i,) for i in range(6000)])
        return db

    def test_cross_product_guard(self, big):
        with pytest.raises(ResourceLimitError, match="safety limit"):
            big.execute("SELECT * FROM a, b")

    def test_nested_loop_guard(self, big):
        # non-equi condition: no hash keys, so the nested-loop fallback
        # path must hit the same typed guard
        with pytest.raises(ResourceLimitError, match="safety limit"):
            big.execute("SELECT * FROM a JOIN b ON a.x < b.y")

    def test_guard_is_typed_execution_error(self, big):
        with pytest.raises(ExecutionError):
            big.execute("SELECT * FROM a, b")

    def test_degenerate_hash_join_guard(self):
        # every key identical: the equi-join is a cross product in
        # disguise and must hit the same typed guard
        db = Database()
        db.execute("CREATE TABLE a (x INT)")
        db.execute("CREATE TABLE b (y INT)")
        db.table("a").insert_rows([(1,)] * 6000)
        db.table("b").insert_rows([(1,)] * 6000)
        with pytest.raises(ResourceLimitError, match="safety limit"):
            db.execute("SELECT * FROM a JOIN b ON a.x = b.y")

    def test_small_cross_product_still_works(self, social):
        rows = social.execute("SELECT count(*) FROM persons a, persons b").scalar()
        assert rows == 16


# ---------------------------------------------------------------------------
# shell surfaces
# ---------------------------------------------------------------------------
class TestShellStats:
    def _shell(self, db):
        out = io.StringIO()
        shell = Shell(db, out=out)
        return shell, out

    def test_stats_before_analyze(self, social):
        shell, out = self._shell(social)
        shell.feed_line("\\stats")
        assert "no statistics recorded" in out.getvalue()

    def test_stats_after_analyze(self, social):
        shell, out = self._shell(social)
        shell.feed_line("ANALYZE;")
        shell.feed_line("\\stats")
        text = out.getvalue()
        assert "persons: rows=4" in text
        assert "distinct=" in text and "min=" in text

    def test_cache_shows_normalized_counters(self, social):
        shell, out = self._shell(social)
        shell.feed_line("\\cache")
        assert "normalized_hits=" in out.getvalue()

    def test_stats_single_table_filter(self, social):
        shell, out = self._shell(social)
        shell.feed_line("ANALYZE;")
        shell.feed_line("\\stats knows")
        text = out.getvalue()
        assert "knows: rows=3" in text and "persons" not in text


# ---------------------------------------------------------------------------
# optimizer on/off behavioural parity on hand-picked cases
# ---------------------------------------------------------------------------
class TestOptimizerToggle:
    def test_left_join_results_match(self, social):
        baseline = Database(optimizer=False)
        baseline.executescript(
            """
            CREATE TABLE persons (id INT, name VARCHAR);
            CREATE TABLE knows (p1 INT, p2 INT, w DOUBLE);
            INSERT INTO persons VALUES (1,'a'),(2,'b'),(3,'c'),(4,'d');
            INSERT INTO knows VALUES (1,2,1.0),(2,3,1.0),(3,4,2.0);
            """
        )
        sql = (
            "SELECT p.id, k.p2 FROM persons p LEFT JOIN knows k "
            "ON p.id = k.p1 WHERE p.id > 1 ORDER BY 1, 2"
        )
        assert social.execute(sql).rows() == baseline.execute(sql).rows()

    def test_build_side_does_not_change_row_order(self, social):
        # knows (3 rows) joined with persons (4 rows): build side differs
        # from probe side, output order must match the canonical plan
        sql = "SELECT k.p1, p.name FROM knows k JOIN persons p ON k.p1 = p.id"
        baseline = Database(optimizer=False)
        baseline.executescript(
            """
            CREATE TABLE persons (id INT, name VARCHAR);
            CREATE TABLE knows (p1 INT, p2 INT, w DOUBLE);
            INSERT INTO persons VALUES (1,'a'),(2,'b'),(3,'c'),(4,'d');
            INSERT INTO knows VALUES (1,2,1.0),(2,3,1.0),(3,4,2.0);
            """
        )
        assert social.execute(sql).rows() == baseline.execute(sql).rows()
