"""Tests for the interactive shell (driven programmatically)."""

import io

import pytest

from repro import Database
from repro.cli import Shell, render_result, render_value


def run_lines(lines, db=None):
    out = io.StringIO()
    shell = Shell(db=db, out=out)
    for line in lines:
        shell.feed_line(line)
        if shell.done:
            break
    return shell, out.getvalue()


class TestRenderValue:
    def test_null(self):
        assert render_value(None) == "NULL"

    def test_float_compact(self):
        assert render_value(2.5) == "2.5"
        assert render_value(2.0) == "2"

    def test_nested_table(self, chain_db):
        result = chain_db.execute(
            "SELECT CHEAPEST SUM(e: w) AS (c, p) "
            "WHERE 1 REACHES 5 OVER edges e EDGE (s, d)"
        )
        _, path = result.rows()[0]
        assert render_value(path) == "<path: 4 edges>"


class TestRenderResult:
    def test_query_table(self):
        db = Database()
        text = render_result(db.execute("SELECT 1 AS a, 'x' AS b"))
        assert "a" in text and "x" in text and "(1 row(s))" in text

    def test_ddl_message(self):
        db = Database()
        text = render_result(db.execute("CREATE TABLE t (x INT)"))
        assert "affected" in text

    def test_truncation_notice(self):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.table("t").insert_rows([(i,) for i in range(300)])
        text = render_result(db.execute("SELECT x FROM t"), max_rows=10)
        assert "showing first 10" in text


class TestShell:
    def test_statement_execution(self):
        _, output = run_lines(
            ["CREATE TABLE t (x INT);", "INSERT INTO t VALUES (1);", "SELECT * FROM t;"]
        )
        assert "1 row(s)" in output

    def test_multiline_statement(self):
        shell, output = run_lines(["SELECT", "1 AS a", ";"])
        assert "a" in output
        assert shell.prompt.startswith("sql")

    def test_continuation_prompt(self):
        shell, _ = run_lines(["SELECT"])
        assert shell.prompt.startswith("...")

    def test_error_reported_not_raised(self):
        _, output = run_lines(["SELECT * FROM missing;"])
        assert "error:" in output

    def test_meta_dt(self):
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        _, output = run_lines(["\\dt"], db=db)
        assert "t  (0 rows)" in output

    def test_meta_dt_empty(self):
        _, output = run_lines(["\\dt"])
        assert "no tables" in output

    def test_meta_describe(self):
        db = Database()
        db.execute("CREATE TABLE t (x INT, s VARCHAR)")
        _, output = run_lines(["\\d t"], db=db)
        assert "x  integer" in output and "s  varchar" in output

    def test_meta_describe_unknown(self):
        _, output = run_lines(["\\d nope"])
        assert "error:" in output

    def test_meta_timing_toggle(self):
        _, output = run_lines(["\\timing", "SELECT 1;"])
        assert "timing on" in output and "time:" in output

    def test_meta_quit(self):
        shell, _ = run_lines(["\\q", "SELECT 1;"])
        assert shell.done

    def test_unknown_meta(self):
        _, output = run_lines(["\\wat"])
        assert "unknown meta command" in output

    def test_save_and_open(self, tmp_path):
        target = str(tmp_path / "db")
        db = Database()
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (9)")
        _, output = run_lines([f"\\save {target}"], db=db)
        assert "saved" in output
        shell, output = run_lines([f"\\open {target}", "SELECT x FROM t;"])
        assert "9" in output

    def test_graph_query_via_shell(self, chain_db):
        _, output = run_lines(
            ["SELECT CHEAPEST SUM(1) AS hops WHERE 1 REACHES 4 OVER edges EDGE (s, d);"],
            db=chain_db,
        )
        assert "hops" in output and "3" in output


class TestCacheAndWorkerMetaCommands:
    def test_meta_cache_counters(self, chain_db):
        _, output = run_lines(
            [
                "SELECT count(*) FROM edges;",
                "SELECT count(*) FROM edges;",
                "\\cache",
            ],
            db=chain_db,
        )
        assert "plan_cache:" in output and "hits=1" in output
        assert "graph_index_cache:" in output

    def test_meta_workers_show_and_set(self):
        _, output = run_lines(["\\workers 3", "\\workers"])
        assert "path workers: 3" in output

    def test_meta_workers_auto(self):
        shell, output = run_lines(["\\workers auto"])
        assert "path workers: auto (effective" in output

    def test_meta_workers_rejects_garbage(self):
        shell, output = run_lines(["\\workers banana", "SELECT 1;"])
        assert "error: expected a number or 'auto'" in output
        assert "1" in output  # the shell survived

    def test_repeated_statement_hits_plan_cache(self, chain_db):
        run_lines(
            ["SELECT s FROM edges WHERE w = 1;"] * 3,
            db=chain_db,
        )
        assert chain_db.plan_cache.stats()["hits"] == 2
