"""Vectorized kernel layer: unit tests + the vectorized on/off oracle.

The unit half exercises :meth:`repro.storage.Column.factorize` and the
:mod:`repro.exec.kernels` primitives directly on the edge cases the SQL
surface makes hard to pin down (all-NULL keys, empty inputs, NaN key
semantics, >2-column keys, unorderable payloads).  The oracle half runs
every query on two databases holding identical data — one with the
kernels (``Database()``), one forced onto the row-at-a-time paths
(``Database(vectorized=False)``) — and requires identical results,
mirroring ``test_optimizer_equivalence``.
"""

import random

import numpy as np
import pytest

from repro import Database, ReproError
from repro.exec import kernels
from repro.exec.kernels import KernelFallback
from repro.storage import Column, DataType
from test_fuzz import random_graph_query, random_query


# ---------------------------------------------------------------------------
# Column.factorize
# ---------------------------------------------------------------------------
class TestFactorize:
    def test_integer_codes_are_value_ordered_nulls_last(self):
        # narrow domain: the subtract-min fast path (no dictionary sort)
        column = Column.from_values(DataType.INTEGER, [30, None, 10, 30, 20])
        codes, cardinality, uniques = column.factorize()
        assert uniques is None
        assert codes[2] < codes[4] < codes[0] == codes[3]  # value order
        assert codes[1] == cardinality - 1  # NULL coded last

    def test_wide_integer_domain_uses_sorted_dictionary(self):
        column = Column.from_values(DataType.BIGINT, [10**12, None, -5, 10**12])
        codes, cardinality, uniques = column.factorize()
        assert codes.tolist() == [1, 2, 0, 1]
        assert cardinality == 3
        assert uniques.tolist() == [-5, 10**12]

    def test_string_codes_are_lexicographic(self):
        column = Column.from_values(DataType.VARCHAR, ["b", "a", None, "b"])
        codes, cardinality, uniques = column.factorize()
        assert codes.tolist() == [1, 0, 2, 1]
        assert cardinality == 3
        assert list(uniques) == ["a", "b"]

    def test_all_null_column(self):
        column = Column.nulls(DataType.INTEGER, 4)
        codes, cardinality, _ = column.factorize()
        assert codes.tolist() == [0, 0, 0, 0]
        assert cardinality == 1

    def test_empty_column(self):
        column = Column.empty(DataType.DOUBLE)
        codes, cardinality, _ = column.factorize()
        assert len(codes) == 0
        assert cardinality == 1  # floor keeps the mixed-radix combine safe

    def test_nan_distinct_gives_each_nan_its_own_code(self):
        nan = float("nan")
        column = Column.from_values(DataType.DOUBLE, [nan, 1.0, nan, None])
        codes, cardinality, _ = column.factorize(nan_distinct=True)
        # value < nan codes < null code; the two NaNs differ
        assert codes[1] == 0
        assert codes[0] != codes[2]
        assert codes[3] == cardinality - 1

    def test_nan_grouped_for_ordering(self):
        nan = float("nan")
        column = Column.from_values(DataType.DOUBLE, [nan, 1.0, nan, None])
        codes, cardinality, _ = column.factorize(nan_distinct=False)
        assert codes[0] == codes[2]
        assert codes[1] < codes[0] < codes[3]
        assert cardinality == 3

    def test_unorderable_but_hashable_payloads_use_dict_codes(self):
        data = np.empty(4, dtype=object)
        data[0], data[1], data[2], data[3] = (1, 2), "x", (1, 2), "x"
        column = Column(DataType.VARCHAR, data)
        codes, cardinality, uniques = column.factorize()
        assert uniques is None  # not orderable -> no sort kernel
        assert codes.tolist() == [0, 1, 0, 1]
        assert cardinality == 2

    def test_unhashable_payloads_raise(self):
        data = np.empty(2, dtype=object)
        data[0], data[1] = {"a": 1}, {"a": 1}
        column = Column(DataType.VARCHAR, data)
        with pytest.raises(TypeError):
            column.factorize()


# ---------------------------------------------------------------------------
# kernel primitives
# ---------------------------------------------------------------------------
class TestCodify:
    def test_multi_column_mixed_types(self):
        a = Column.from_values(DataType.INTEGER, [1, 1, 2, 1])
        b = Column.from_values(DataType.VARCHAR, ["x", "y", "x", "x"])
        c = Column.from_values(DataType.DOUBLE, [0.5, 0.5, 0.5, 0.5])
        ids = kernels.codify([a, b, c], 4)
        assert ids[0] == ids[3]
        assert len({ids[0], ids[1], ids[2]}) == 3

    def test_zero_columns_is_one_group(self):
        ids = kernels.codify([], 3)
        assert ids.tolist() == [0, 0, 0]

    def test_null_keys_group_together(self):
        a = Column.from_values(DataType.INTEGER, [None, None, 1])
        ids = kernels.codify([a], 3)
        assert ids[0] == ids[1] != ids[2]

    def test_group_ids_first_occurrence_order(self):
        a = Column.from_values(DataType.VARCHAR, ["z", "a", "z", "m", "a"])
        ids, n_groups, first_rows = kernels.group_ids([a], 5)
        assert n_groups == 3
        assert ids.tolist() == [0, 1, 0, 2, 1]  # numbered by first appearance
        assert first_rows.tolist() == [0, 1, 3]

    def test_group_ids_four_key_columns(self):
        columns = [
            Column.from_values(DataType.INTEGER, [1, 1, 1, 2]),
            Column.from_values(DataType.VARCHAR, ["a", "a", "b", "a"]),
            Column.from_values(DataType.BOOLEAN, [True, True, True, False]),
            Column.from_values(DataType.DATE, ["2020-01-01"] * 4),
        ]
        ids, n_groups, _ = kernels.group_ids(columns, 4)
        assert n_groups == 3
        assert ids[0] == ids[1]

    def test_distinct_mask_empty_input(self):
        assert kernels.distinct_mask([Column.empty(DataType.INTEGER)], 0).tolist() == []

    def test_distinct_mask_all_null(self):
        keep = kernels.distinct_mask([Column.nulls(DataType.VARCHAR, 3)], 3)
        assert keep.tolist() == [True, False, False]


class TestSortOrder:
    def test_nulls_last_ascending_first_descending(self):
        column = Column.from_values(DataType.INTEGER, [None, 2, 1, None, 3])
        asc = kernels.sort_order([(column, True)], 5)
        assert column.take(asc).to_pylist() == [1, 2, 3, None, None]
        desc = kernels.sort_order([(column, False)], 5)
        assert column.take(desc).to_pylist() == [None, None, 3, 2, 1]

    def test_stability_on_ties(self):
        column = Column.from_values(DataType.INTEGER, [1, 1, 0, 1])
        order = kernels.sort_order([(column, True)], 4)
        assert order.tolist() == [2, 0, 1, 3]

    def test_unorderable_key_falls_back(self):
        data = np.empty(2, dtype=object)
        data[0], data[1] = (1,), "x"
        with pytest.raises(KernelFallback):
            kernels.sort_order([(Column(DataType.VARCHAR, data), True)], 2)

    def test_nan_sort_key_falls_back(self):
        # Python's sorted() has no total order for NaN; its (stable,
        # input-dependent) result is the oracle — only the row path
        # reproduces it, so the kernel must decline
        column = Column.from_values(
            DataType.DOUBLE, [1.0, float("nan"), 0.5]
        )
        with pytest.raises(KernelFallback):
            kernels.sort_order([(column, True)], 3)


class TestJoinIndices:
    def test_multi_key_varchar_int(self):
        left = [
            Column.from_values(DataType.INTEGER, [1, 1, 2]),
            Column.from_values(DataType.VARCHAR, ["a", "b", "a"]),
        ]
        right = [
            Column.from_values(DataType.INTEGER, [1, 2, 1]),
            Column.from_values(DataType.VARCHAR, ["b", "a", "z"]),
        ]
        li, ri = kernels.join_indices(left, right)
        assert list(zip(li.tolist(), ri.tolist())) == [(1, 0), (2, 1)]

    def test_null_keys_never_match(self):
        left = [Column.from_values(DataType.VARCHAR, ["a", None])]
        right = [Column.from_values(DataType.VARCHAR, [None, "a"])]
        li, ri = kernels.join_indices(left, right)
        assert list(zip(li.tolist(), ri.tolist())) == [(0, 1)]

    def test_double_keys_nan_never_matches(self):
        nan = float("nan")
        left = [Column.from_values(DataType.DOUBLE, [1.5, nan, None, 2.5])]
        right = [Column.from_values(DataType.DOUBLE, [nan, 1.5, 2.5, None])]
        li, ri = kernels.join_indices(left, right)
        assert list(zip(li.tolist(), ri.tolist())) == [(0, 1), (3, 2)]

    def test_untyped_column_pairs_with_typed_same_dtype(self):
        # parameter-derived columns carry type None; a dtype-identical
        # pairing must still codify (the untyped side is relabelled)
        untyped = Column(None, np.array([1, 2, 3], dtype=np.int64))
        typed = Column.from_values(DataType.BIGINT, [2, 3, 4])
        keep = kernels.setop_mask([untyped], 3, [typed], 3, keep_members=True)
        assert keep.tolist() == [False, True, True]
        with pytest.raises(KernelFallback):
            # object vs primitive dtypes stay a fallback
            kernels.setop_mask(
                [Column(None, np.array([1], dtype=np.int64))],
                1,
                [Column.from_values(DataType.VARCHAR, ["x"])],
                1,
                keep_members=True,
            )

    def test_mixed_int_double_single_key(self):
        left = [Column.from_values(DataType.INTEGER, [1, 2, 3])]
        right = [Column.from_values(DataType.DOUBLE, [2.0, 2.5, 3.0])]
        li, ri = kernels.join_indices(left, right)
        assert list(zip(li.tolist(), ri.tolist())) == [(1, 0), (2, 2)]


# ---------------------------------------------------------------------------
# engine-level oracle: vectorized on vs off
# ---------------------------------------------------------------------------
SCHEMA = """
    CREATE TABLE t1 (a INT, b VARCHAR, c DOUBLE);
    CREATE TABLE t2 (a INT, d INT);
    CREATE TABLE e (s INT, d INT, w INT);
    INSERT INTO t1 VALUES
        (1, 'x', 0.5), (2, 'y', 1.5), (3, NULL, 2.5), (NULL, 'z', NULL),
        (2, 'y', 1.5), (1, 'a', NULL), (NULL, NULL, 0.5);
    INSERT INTO t2 VALUES (1, 10), (2, 20), (5, 50), (2, 21), (NULL, 0);
    INSERT INTO e VALUES (1, 2, 1), (2, 3, 2), (3, 1, 3), (2, 5, 1);
"""


@pytest.fixture(scope="module")
def engines():
    vectorized = Database()
    rowwise = Database(vectorized=False)
    vectorized.executescript(SCHEMA)
    rowwise.executescript(SCHEMA)
    return vectorized, rowwise


def assert_equivalent(engines, sql, params=(), *, ordered=False):
    vectorized, rowwise = engines
    try:
        expected = rowwise.execute(sql, params).rows()
        expected_error = None
    except ReproError as exc:
        expected, expected_error = None, exc
    try:
        actual = vectorized.execute(sql, params).rows()
        actual_error = None
    except ReproError as exc:
        actual, actual_error = None, exc
    if expected_error is not None or actual_error is not None:
        assert (expected_error is None) == (actual_error is None), (
            f"only one pipeline failed for {sql!r}: "
            f"rowwise={expected_error!r} vectorized={actual_error!r}"
        )
        return
    # repr-compare so rows containing NaN (nan != nan) still match
    if ordered:
        # ORDER BY must be *bit-identical*, including tie order
        assert list(map(repr, actual)) == list(map(repr, expected)), sql
    else:
        assert sorted(map(repr, actual)) == sorted(map(repr, expected)), sql


class TestEngineEquivalence:
    def test_group_by_shapes(self, engines):
        for sql in [
            "SELECT b, count(*), sum(a), min(c), max(c), avg(a) FROM t1 GROUP BY b",
            "SELECT a, b, count(*) FROM t1 GROUP BY a, b",
            "SELECT a % 2, count(c), sum(c) FROM t1 GROUP BY a % 2",
            "SELECT count(*), sum(a), min(b), max(b), avg(c) FROM t1",
            "SELECT count(DISTINCT a), count(DISTINCT b) FROM t1",
            "SELECT a, count(DISTINCT b) FROM t1 GROUP BY a",
            "SELECT b, min(a) FROM t1 GROUP BY b HAVING count(*) > 1",
            "SELECT count(*) FROM t1 WHERE 1 = 0",
            "SELECT sum(a), min(a), avg(a) FROM t1 WHERE 1 = 0",
        ]:
            assert_equivalent(engines, sql)

    def test_distinct_shapes(self, engines):
        for sql in [
            "SELECT DISTINCT a FROM t1",
            "SELECT DISTINCT a, b FROM t1",
            "SELECT DISTINCT c FROM t1",
            "SELECT DISTINCT a, b, c FROM t1 WHERE 1 = 0",
        ]:
            assert_equivalent(engines, sql)

    def test_order_by_bit_identical(self, engines):
        for sql in [
            "SELECT a, b, c FROM t1 ORDER BY a",
            "SELECT a, b, c FROM t1 ORDER BY a DESC",
            "SELECT a, b, c FROM t1 ORDER BY b, a DESC",
            "SELECT a, b, c FROM t1 ORDER BY c DESC, b, a",
            "SELECT a, b, c FROM t1 ORDER BY a % 2, c",
            "SELECT d FROM t2 ORDER BY 1 DESC",
        ]:
            assert_equivalent(engines, sql, ordered=True)

    def test_join_shapes(self, engines):
        for sql in [
            "SELECT * FROM t1 JOIN t2 ON t1.a = t2.a",
            "SELECT * FROM t1 JOIN t2 ON t1.a = t2.a AND t1.a = t2.d - 19",
            "SELECT t1.b, t2.d FROM t1 LEFT JOIN t2 ON t1.a = t2.a",
            "SELECT x.b, y.b FROM t1 x JOIN t1 y ON x.b = y.b",
            "SELECT x.b, y.b FROM t1 x JOIN t1 y "
            "ON x.b = y.b AND x.a = y.a",
            "SELECT x.c, y.c FROM t1 x JOIN t1 y ON x.c = y.c",
        ]:
            assert_equivalent(engines, sql)

    def test_setop_shapes(self, engines):
        for sql in [
            "SELECT a FROM t1 UNION SELECT a FROM t2",
            "SELECT a FROM t1 UNION ALL SELECT a FROM t2",
            "SELECT a FROM t1 INTERSECT SELECT a FROM t2",
            "SELECT a FROM t1 EXCEPT SELECT a FROM t2",
            "SELECT a, b FROM t1 EXCEPT SELECT a, b FROM t1 WHERE a = 1",
            "SELECT a, d FROM t2 INTERSECT SELECT a, d FROM t2",
        ]:
            assert_equivalent(engines, sql)

    def test_recursive_cte_dedup(self, engines):
        sql = (
            "WITH RECURSIVE r (n) AS ("
            "SELECT s FROM e UNION SELECT d FROM e WHERE d IN (SELECT n FROM r)"
            ") SELECT n FROM r ORDER BY n"
        )
        assert_equivalent(engines, sql, ordered=True)
        sql = (
            "WITH RECURSIVE walk (node, hops) AS ("
            "SELECT 1, 0 UNION "
            "SELECT e.d, walk.hops + 1 FROM walk JOIN e ON walk.node = e.s "
            "WHERE walk.hops < 5"
            ") SELECT node, hops FROM walk ORDER BY hops, node"
        )
        assert_equivalent(engines, sql, ordered=True)

    def test_double_key_join_with_nan_and_null(self, engines):
        for db in engines:
            db.execute("CREATE TABLE fk (k DOUBLE, v INT)")
            db.execute(
                "INSERT INTO fk VALUES (1.5, 1), (2.5, 2), (NULL, 3), (?, 4)",
                (float("nan"),),
            )
        try:
            assert_equivalent(
                engines, "SELECT x.v, y.v FROM fk x JOIN fk y ON x.k = y.k"
            )
            # NaN sort keys: the kernel declines, both engines run the
            # identical row comparator — bit-identical output required
            assert_equivalent(
                engines, "SELECT v FROM fk ORDER BY k", ordered=True
            )
        finally:
            for db in engines:
                db.execute("DROP TABLE fk")

    def test_nan_aggregate_values_fall_back(self, engines):
        # np.minimum/maximum propagate NaN; Python min()/max() treat it
        # as un-ordered — the kernel must decline so both engines agree
        for db in engines:
            db.execute("CREATE TABLE na (k INT, v DOUBLE)")
            db.execute(
                "INSERT INTO na VALUES (1, 1.0), (1, ?), (1, 2.0), (2, ?)",
                (float("nan"), float("nan")),
            )
        try:
            assert_equivalent(
                engines, "SELECT k, min(v), max(v), count(v) FROM na GROUP BY k"
            )
        finally:
            for db in engines:
                db.execute("DROP TABLE na")

    def test_thin_delta_recursion_switches_to_seen_set(self, engines):
        # a 2000-step single-row-delta chain: the hybrid dedup must
        # switch off the per-iteration re-codification and still agree
        for db in engines:
            db.execute("CREATE TABLE chain (s INT, d INT)")
            db.table("chain").insert_rows([(i, i + 1) for i in range(2000)])
        sql = (
            "WITH RECURSIVE walk (node) AS ("
            "SELECT 0 UNION "
            "SELECT c.d FROM walk JOIN chain c ON walk.node = c.s"
            ") SELECT count(*), min(node), max(node) FROM walk"
        )
        try:
            assert_equivalent(engines, sql)
        finally:
            for db in engines:
                db.execute("DROP TABLE chain")


class TestFuzzOracle:
    def test_relational_fuzz_corpus(self, engines):
        rng = random.Random(20260730)
        for _ in range(250):
            assert_equivalent(engines, random_query(rng))

    def test_graph_fuzz_corpus(self, engines):
        rng = random.Random(4014)
        for _ in range(150):
            assert_equivalent(engines, random_graph_query(rng))


# ---------------------------------------------------------------------------
# counters / knobs
# ---------------------------------------------------------------------------
class TestCountersAndKnobs:
    def test_kernel_hits_recorded(self):
        db = Database()
        db.executescript(
            "CREATE TABLE t (a INT, b VARCHAR);"
            "INSERT INTO t VALUES (1, 'x'), (1, 'y'), (2, 'x');"
        )
        db.execute("SELECT b, count(*) FROM t GROUP BY b")
        db.execute("SELECT DISTINCT a FROM t")
        db.execute("SELECT * FROM t ORDER BY b, a")
        db.execute("SELECT x.a FROM t x JOIN t y ON x.b = y.b")
        stats = db.kernel_stats()
        for op in ("group_by", "distinct", "sort", "join"):
            assert stats["hits"].get(op, 0) >= 1, (op, stats)

    def test_vectorized_off_records_nothing(self):
        db = Database(vectorized=False)
        db.executescript(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (1), (2);"
        )
        db.execute("SELECT a, count(*) FROM t GROUP BY a ORDER BY a")
        stats = db.kernel_stats()
        assert stats["hit_total"] == 0
        assert stats["fallback_total"] == 0

    def test_profile_report_includes_kernel_counters(self):
        db = Database()
        db.executescript(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (1), (2);"
        )
        _, report = db.profile("SELECT a, count(*) FROM t GROUP BY a")
        assert "vectorized kernels:" in report
        assert "group_by=" in report

    def test_distinct_aggregate_counts_fallback(self):
        db = Database()
        db.executescript(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (1), (2);"
        )
        db.execute("SELECT count(DISTINCT a) FROM t")
        stats = db.kernel_stats()
        # grouping itself is a hit; the DISTINCT aggregate falls back
        assert stats["hits"].get("group_by", 0) == 1
        assert stats["fallbacks"].get("aggregate", 0) == 1

    def test_shell_kernels_command(self):
        import io

        from repro.cli import Shell

        out = io.StringIO()
        shell = Shell(out=out)
        shell.feed_line("CREATE TABLE t (a INT);")
        shell.feed_line("INSERT INTO t VALUES (1), (1);")
        shell.feed_line("SELECT DISTINCT a FROM t;")
        shell.feed_line("\\kernels")
        text = out.getvalue()
        assert "vectorized: on" in text
        assert "distinct" in text


# ---------------------------------------------------------------------------
# randomized key-shape sweep (value-level, no SQL in the way)
# ---------------------------------------------------------------------------
def _random_column(rng, n):
    kind = rng.randrange(4)
    if kind == 0:
        values = [rng.choice([None, *range(5)]) for _ in range(n)]
        return Column.from_values(DataType.INTEGER, values)
    if kind == 1:
        values = [rng.choice([None, "a", "b", "cc"]) for _ in range(n)]
        return Column.from_values(DataType.VARCHAR, values)
    if kind == 2:
        values = [rng.choice([None, 0.5, 1.5, -2.0]) for _ in range(n)]
        return Column.from_values(DataType.DOUBLE, values)
    values = [rng.choice([None, True, False]) for _ in range(n)]
    return Column.from_values(DataType.BOOLEAN, values)


class TestRandomizedParity:
    def test_distinct_mask_matches_row_tuples(self):
        rng = random.Random(7)
        for _ in range(50):
            n = rng.randrange(0, 30)
            columns = [_random_column(rng, n) for _ in range(rng.randrange(1, 4))]
            keep = kernels.distinct_mask(columns, n)
            seen, expected = set(), []
            rows = list(zip(*(c.to_pylist() for c in columns))) if n else []
            for row in rows:
                expected.append(row not in seen)
                seen.add(row)
            assert keep.tolist() == expected

    def test_sort_order_matches_python_comparator(self):
        rng = random.Random(11)
        for _ in range(50):
            n = rng.randrange(0, 25)
            keys = [
                (_random_column(rng, n), rng.random() < 0.5)
                for _ in range(rng.randrange(1, 4))
            ]
            order = kernels.sort_order(keys, n)
            expected = list(range(n))
            for column, ascending in reversed(keys):
                values = column.to_pylist()

                def sort_key(pos):
                    value = values[pos]
                    return (1, 0) if value is None else (0, value)

                expected = sorted(expected, key=sort_key, reverse=not ascending)
            # boolean False < True matches the comparator; verify per key
            assert order.tolist() == expected, keys
