"""Property-based optimizer correctness oracle.

Every fuzzed query (reusing the generators of ``test_fuzz``) runs twice
— once through the full cost-based optimizer and once through the
legacy-rewriter baseline (``Database(optimizer=False)``) — over two
databases holding identical data.  Sorted result multisets must match
exactly: pushdown, join reordering, build-side selection and projection
pruning may change plans, never answers.
"""

import random

import pytest

from repro import Database, ReproError
from test_fuzz import random_graph_query, random_query

SCHEMA = """
    CREATE TABLE t1 (a INT, b VARCHAR, c DOUBLE);
    CREATE TABLE t2 (a INT, d INT);
    CREATE TABLE e (s INT, d INT, w INT);
    INSERT INTO t1 VALUES
        (1, 'x', 0.5), (2, 'y', 1.5), (3, NULL, 2.5), (NULL, 'z', NULL);
    INSERT INTO t2 VALUES (1, 10), (2, 20), (5, 50);
    INSERT INTO e VALUES (1, 2, 1), (2, 3, 2), (3, 1, 3), (2, 5, 1);
"""


def _sorted_rows(rows):
    return sorted(rows, key=repr)


@pytest.fixture(scope="module")
def engines():
    optimized = Database()
    baseline = Database(optimizer=False, parameterize=False)
    optimized.executescript(SCHEMA)
    baseline.executescript(SCHEMA)
    optimized.execute("ANALYZE")  # the optimizer should also be fed stats
    return optimized, baseline


def assert_equivalent(engines, sql, params=()):
    optimized, baseline = engines
    try:
        expected = baseline.execute(sql, params).rows()
        expected_error = None
    except ReproError as exc:
        expected, expected_error = None, exc
    try:
        actual = optimized.execute(sql, params).rows()
        actual_error = None
    except ReproError as exc:
        actual, actual_error = None, exc
    if expected_error is not None or actual_error is not None:
        # both pipelines must agree that the statement fails
        assert (expected_error is None) == (actual_error is None), (
            f"only one pipeline failed for {sql!r}: "
            f"baseline={expected_error!r} optimized={actual_error!r}"
        )
        return
    assert _sorted_rows(actual) == _sorted_rows(expected), sql


class TestOptimizerEquivalence:
    def test_relational_fuzz_corpus(self, engines):
        rng = random.Random(20260729)
        for _ in range(250):
            assert_equivalent(engines, random_query(rng))

    def test_graph_fuzz_corpus(self, engines):
        rng = random.Random(172)
        for _ in range(150):
            assert_equivalent(engines, random_graph_query(rng))

    def test_join_reorder_shapes(self, engines):
        rng = random.Random(9)
        predicates = [
            "t1.a = t2.a",
            "t1.a = e.s",
            "t2.a = e.s",
            "t1.a = t2.a AND t2.a = e.s",
            "t1.a = e.s AND e.w > 1",
            "t1.a = t2.a AND e.w < 3 AND t1.c > 0.0",
        ]
        for _ in range(40):
            pred = rng.choice(predicates)
            sql = (
                "SELECT t1.a, t2.d, e.w FROM t1, t2, e "
                f"WHERE {pred} ORDER BY 1, 2, 3"
            )
            assert_equivalent(engines, sql)

    def test_setop_and_subquery_shapes(self, engines):
        statements = [
            "SELECT a FROM (SELECT a FROM t1 UNION SELECT a FROM t2) u "
            "WHERE a > 1",
            "SELECT * FROM (SELECT a, d FROM t2 EXCEPT SELECT a, 10 FROM t1) x "
            "WHERE a < 10",
            "SELECT a FROM t1 WHERE a IN (SELECT a FROM t2) AND a > 0",
            "SELECT x.a FROM (SELECT a, c FROM t1 WHERE c IS NOT NULL) x "
            "WHERE x.a = 2",
            "SELECT g, n FROM (SELECT a % 2 AS g, count(*) AS n FROM t1 "
            "GROUP BY a % 2) s WHERE g = 1",
            # constant predicates above scalar aggregates must not push
            "SELECT * FROM (SELECT count(*) AS c FROM t1) x WHERE 1 = 0",
            "SELECT * FROM (SELECT max(a) AS m FROM t1) x WHERE 1 = 1",
            "SELECT * FROM (SELECT sum(a) AS s FROM t2) x WHERE x.s > 0",
        ]
        for sql in statements:
            assert_equivalent(engines, sql)

    def test_graph_pushdown_shapes(self, engines):
        statements = [
            # predicate above a derived graph select: pushed into the input
            "SELECT * FROM (SELECT p.src, p.dst, CHEAPEST SUM(1) AS hops "
            "FROM (VALUES (1,2),(1,3),(2,5),(3,1),(5,1)) p (src, dst) "
            "WHERE p.src REACHES p.dst OVER e EDGE (s, d)) q WHERE q.src < 3",
            # graph join with single-side predicates
            "SELECT a.a, b.a FROM t1 a, t2 b "
            "WHERE a.a REACHES b.a OVER e EDGE (s, d) AND a.a > 1 AND b.a < 9",
        ]
        for sql in statements:
            assert_equivalent(engines, sql)

    def test_parameterized_statements(self, engines):
        rng = random.Random(33)
        for _ in range(30):
            source, dest = rng.randint(0, 6), rng.randint(0, 6)
            assert_equivalent(
                engines,
                "SELECT CHEAPEST SUM(k: w) WHERE ? REACHES ? "
                "OVER e k EDGE (s, d)",
                (source, dest),
            )
