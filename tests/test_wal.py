"""Write-ahead log: round-trips, torn-tail repair, checkpoints, group
commit, fault injection, and the save-path crash hardening.

The recovery-equivalence fuzz reuses the DML-friendly generators from
:mod:`tests.test_fuzz` (same ``t1``/``t2`` schema, same predicate
grammar), applying the identical randomized workload to a durable
database and an in-memory oracle, then asserting the *recovered*
database matches the oracle table-for-table.
"""

import os
import shutil
import struct
import threading

import numpy as np
import pytest

from repro import Database, ReproError
from repro.errors import FaultInjectedError, WalError
from repro.faults import FaultInjector
from repro.storage.wal import (
    _RECORD_HEADER,
    _SEGMENT_HEADER,
    WriteAheadLog,
    default_wal_directory,
    scan_wal,
    wal_exists,
)

from tests.test_fuzz import random_predicate, random_scalar


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
SETUP = """
CREATE TABLE t1 (a INT, b VARCHAR, c DOUBLE);
CREATE TABLE t2 (a INT, d INT);
INSERT INTO t1 VALUES
    (1, 'x', 0.5), (2, 'y', 1.5), (3, NULL, 2.5), (NULL, 'z', NULL);
INSERT INTO t2 VALUES (1, 10), (2, 20), (5, 50);
"""


def dump(db):
    """Every table's full contents, order-independent."""
    out = {}
    for name in sorted(db.catalog.table_names()):
        result = db.execute(f"SELECT * FROM {name}")
        out[name] = (result.column_names, sorted(result.rows(), key=repr))
    return out


def segment_paths(wal_dir):
    return sorted(
        os.path.join(wal_dir, name)
        for name in os.listdir(wal_dir)
        if name.startswith("seg-")
    )


def record_offsets(path):
    """Byte offset of each record in one segment file."""
    with open(path, "rb") as handle:
        raw = handle.read()
    offsets = []
    offset = _SEGMENT_HEADER.size
    while offset < len(raw):
        length, _crc = _RECORD_HEADER.unpack_from(raw, offset)
        offsets.append(offset)
        offset += _RECORD_HEADER.size + length
    return offsets, raw


class TestRoundTrip:
    """Every record kind replays to the state the live run had."""

    def test_all_dml_kinds_recover(self, tmp_path):
        target = str(tmp_path / "db")
        db = Database.open(target, durability="commit")
        db.executescript(SETUP)
        db.execute("UPDATE t1 SET c = c + 1, b = 'u' WHERE a = 2")
        db.execute("DELETE FROM t1 WHERE a = 3")
        db.execute("CREATE TABLE t3 AS SELECT a, d FROM t2 WHERE a > 1")
        db.execute("DROP TABLE t3")
        db.execute("CREATE TABLE t4 (x INT)")
        with db.appender("t4") as appender:
            appender.append_rows([(i,) for i in range(10)])
        expected = dump(db)
        db.close()

        recovered = Database.open(target, durability="off")
        assert recovered.recovery_info["replayed"] > 0
        assert dump(recovered) == expected
        recovered.close()

    def test_transaction_commit_recovers_and_rollback_leaves_nothing(
        self, tmp_path
    ):
        target = str(tmp_path / "db")
        db = Database.open(target, durability="commit")
        db.executescript(SETUP)
        session = db.connect()
        session.execute("BEGIN")
        session.execute("INSERT INTO t1 VALUES (7, 'txn', 7.5)")
        session.execute("UPDATE t2 SET d = d + 1 WHERE a = 1")
        session.execute("COMMIT")
        session.execute("BEGIN")
        session.execute("INSERT INTO t1 VALUES (99, 'rolled', 0.0)")
        session.execute("ROLLBACK")
        expected = dump(db)
        db.close()

        recovered = Database.open(target, durability="off")
        assert dump(recovered) == expected
        assert (
            recovered.execute(
                "SELECT count(*) FROM t1 WHERE a = 99"
            ).scalar()
            == 0
        )
        recovered.close()

    def test_graph_index_ddl_recovers(self, tmp_path):
        target = str(tmp_path / "db")
        db = Database.open(target, durability="commit")
        db.execute("CREATE TABLE e (s INT, d INT)")
        db.execute("INSERT INTO e VALUES (1, 2), (2, 3)")
        db.execute("CREATE GRAPH INDEX gi ON e EDGE (s, d)")
        specs = dict(db.graph_indices.specs())
        db.close()

        recovered = Database.open(target, durability="off")
        assert dict(recovered.graph_indices.specs()) == specs
        recovered.close()

    def test_copy_recovers_file_contents_not_path(self, tmp_path):
        csv = tmp_path / "rows.csv"
        csv.write_text("x,y\n1,2\n3,4\n")
        target = str(tmp_path / "db")
        db = Database.open(target, durability="commit")
        db.execute("CREATE TABLE c (x INT, y INT)")
        db.execute(f"COPY c FROM '{csv}'")
        expected = dump(db)
        db.close()
        csv.unlink()  # the log must not depend on the file surviving

        recovered = Database.open(target, durability="off")
        assert dump(recovered) == expected
        recovered.close()

    def test_off_databases_write_no_log(self, tmp_path):
        db = Database(durability="off")
        db.executescript(SETUP)
        assert db.wal is None
        assert not wal_exists(default_wal_directory(str(tmp_path / "db")))
        assert db.wal_stats() == {"enabled": False, "durability": "off"}
        db.close()

    def test_plain_constructor_requires_wal_dir_for_durable(self):
        with pytest.raises(ValueError, match="wal_dir"):
            Database(durability="commit")
        with pytest.raises(ValueError, match="durability"):
            Database(durability="paranoid")


class TestRecoveryEquivalenceFuzz:
    """Randomized DML workload: recovered state == in-memory oracle."""

    def random_dml(self, rng, step):
        roll = rng.random()
        if roll < 0.40:
            values = ", ".join(
                f"({rng.randint(0, 9)}, '{rng.choice('xyz')}{step}', "
                f"{rng.randint(0, 50)}.5)"
                for _ in range(rng.randint(1, 3))
            )
            return f"INSERT INTO t1 VALUES {values}"
        if roll < 0.60:
            return (
                f"UPDATE t1 SET c = {random_scalar(rng)} "
                f"WHERE {random_predicate(rng)}"
            )
        if roll < 0.75:
            return f"DELETE FROM t1 WHERE {random_predicate(rng)} AND a > 6"
        if roll < 0.90:
            return (
                f"INSERT INTO t2 VALUES ({rng.randint(0, 9)}, "
                f"{rng.randint(0, 99)})"
            )
        return f"UPDATE t2 SET d = d + {rng.randint(1, 3)} WHERE a = 2"

    @pytest.mark.parametrize("seed", [11, 222, 3333])
    def test_recovered_state_matches_oracle(self, tmp_path, seed):
        rng = __import__("random").Random(seed)
        statements = [self.random_dml(rng, step) for step in range(40)]

        oracle = Database()
        oracle.executescript(SETUP)
        target = str(tmp_path / "db")
        db = Database.open(target, durability="commit")
        db.executescript(SETUP)
        for index, sql in enumerate(statements):
            oracle.execute(sql)
            db.execute(sql)
            if index == len(statements) // 2:
                db.save(target)  # a mid-workload checkpoint
        db.close()

        recovered = Database.open(target, durability="off")
        assert dump(recovered) == dump(oracle)
        recovered.close()
        oracle.close()


class TestTornTailMatrix:
    """Physical corruption of the last record: the valid prefix always
    survives, the damage is truncated away, recovery never raises."""

    def _make_db(self, tmp_path):
        target = str(tmp_path / "db")
        db = Database.open(target, durability="commit")
        db.execute("CREATE TABLE t (a INT)")
        for i in range(5):
            db.execute(f"INSERT INTO t VALUES ({i})")
        db.close()
        return target, default_wal_directory(target)

    def _recover_and_count(self, target):
        db = Database.open(target, durability="off")
        count = db.execute("SELECT count(*) FROM t").scalar()
        info = dict(db.recovery_info)
        db.close()
        return count, info

    def test_truncated_length_header(self, tmp_path):
        target, wal_dir = self._make_db(tmp_path)
        path = segment_paths(wal_dir)[-1]
        offsets, _raw = record_offsets(path)
        with open(path, "r+b") as handle:
            handle.truncate(offsets[-1] + 3)  # mid length-header
        count, info = self._recover_and_count(target)
        assert count == 4  # last acked insert lost to physical damage
        assert info["truncate_reason"] == "torn record header"
        # the repair is physical: a second scan is clean
        assert scan_wal(wal_dir, repair=False).truncate_reason is None

    def test_bad_crc(self, tmp_path):
        target, wal_dir = self._make_db(tmp_path)
        path = segment_paths(wal_dir)[-1]
        offsets, raw = record_offsets(path)
        flip = offsets[-1] + _RECORD_HEADER.size + 2  # a payload byte
        with open(path, "r+b") as handle:
            handle.seek(flip)
            handle.write(bytes([raw[flip] ^ 0xFF]))
        count, info = self._recover_and_count(target)
        assert count == 4
        assert info["truncate_reason"] == "checksum mismatch"

    def test_zero_filled_tail(self, tmp_path):
        target, wal_dir = self._make_db(tmp_path)
        path = segment_paths(wal_dir)[-1]
        with open(path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            handle.write(b"\x00" * 64)  # preallocated-but-unwritten tail
        count, info = self._recover_and_count(target)
        assert count == 5  # every real record survives
        assert info["truncate_reason"] == "bad record length"
        assert info["truncated_bytes"] == 64

    def test_duplicate_last_record(self, tmp_path):
        target, wal_dir = self._make_db(tmp_path)
        path = segment_paths(wal_dir)[-1]
        offsets, raw = record_offsets(path)
        with open(path, "ab") as handle:
            handle.write(raw[offsets[-1]:])  # re-appended ack-lost record
        count, info = self._recover_and_count(target)
        assert count == 5  # applied once, not twice
        assert info["duplicates"] == 1
        assert info["truncate_reason"] is None

    def test_lsn_gap_stops_the_scan_and_drops_later_segments(self, tmp_path):
        target, wal_dir = self._make_db(tmp_path)
        path = segment_paths(wal_dir)[-1]
        offsets, raw = record_offsets(path)
        # splice out a middle record: later records are unreachable
        with open(path, "wb") as handle:
            handle.write(raw[: offsets[2]] + raw[offsets[3]:])
        count, info = self._recover_and_count(target)
        assert count == 1  # records before the gap only (create + insert 0)
        assert "lsn gap" in info["truncate_reason"]

    def test_missing_records_before_the_log_raise(self, tmp_path):
        import json

        target, wal_dir = self._make_db(tmp_path)
        db = Database.open(target)  # attach and checkpoint
        db.save(target)
        db.execute("INSERT INTO t VALUES (100)")
        db.close()
        meta_path = os.path.join(target, "catalog.json")
        with open(meta_path) as handle:
            meta = json.load(handle)
        meta["wal"]["checkpoint_lsn"] -= 2  # pretend the image is older
        with open(meta_path, "w") as handle:
            json.dump(meta, handle)
        with pytest.raises(WalError, match="missing records"):
            Database.open(target)


class TestCheckpoint:
    def test_save_rotates_and_prunes(self, tmp_path):
        target = str(tmp_path / "db")
        wal_dir = default_wal_directory(target)
        db = Database.open(target, durability="commit")
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        assert len(segment_paths(wal_dir)) == 1
        db.save(target)
        assert db.wal_stats()["checkpoints"] == 1
        # the pre-checkpoint segment is pruned, a fresh one is live
        paths = segment_paths(wal_dir)
        assert len(paths) == 1
        assert paths[0].endswith("seg-00000002.wal")
        db.execute("INSERT INTO t VALUES (2)")
        db.close()

        recovered = Database.open(target, durability="off")
        assert recovered.recovery_info["replayed"] == 1  # just the insert
        assert recovered.recovery_info["skipped"] == 0
        assert recovered.execute("SELECT count(*) FROM t").scalar() == 2
        recovered.close()

    def test_backup_save_does_not_steal_the_log(self, tmp_path):
        target = str(tmp_path / "db")
        backup = str(tmp_path / "backup")
        wal_dir = default_wal_directory(target)
        db = Database.open(target, durability="commit")
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.save(target)  # pairs the log with `target`
        db.execute("INSERT INTO t VALUES (2)")
        before = segment_paths(wal_dir)
        db.save(backup)  # a backup copy elsewhere
        assert segment_paths(wal_dir) == before  # no rotation, no prune
        db.execute("INSERT INTO t VALUES (3)")
        db.close()

        # the primary still recovers everything...
        recovered = Database.open(target, durability="off")
        assert recovered.execute("SELECT count(*) FROM t").scalar() == 3
        recovered.close()
        # ...and the backup loads standalone (without the live log)
        loaded = Database.load(backup)
        assert loaded.execute("SELECT count(*) FROM t").scalar() == 2
        loaded.close()

    def test_explicit_snapshot_save_rejected_when_durable(self, tmp_path):
        target = str(tmp_path / "db")
        from repro.persist import save_database

        db = Database.open(target, durability="commit")
        db.execute("CREATE TABLE t (a INT)")
        snapshot = db.pin_snapshot()
        with pytest.raises(WalError, match="snapshot"):
            save_database(db, target, snapshot=snapshot)
        db.close()

    def test_create_refuses_existing_segments(self, tmp_path):
        target = str(tmp_path / "db")
        db = Database.open(target, durability="commit")
        db.execute("CREATE TABLE t (a INT)")
        db.close()
        with pytest.raises(WalError, match="Database.open"):
            Database(
                durability="commit",
                wal_dir=default_wal_directory(target),
            )

    def test_load_raises_without_image_or_log(self, tmp_path):
        missing = str(tmp_path / "nothing")
        with pytest.raises(ReproError, match="not a saved database"):
            Database.load(missing)
        # open() treats the same directory as create-fresh
        db = Database.open(missing, durability="commit")
        assert db.catalog.table_names() == []
        db.close()


class TestInterruptedSaveCleanup:
    def _saved_db(self, tmp_path):
        target = str(tmp_path / "db")
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.save(target)
        db.close()
        return target

    def test_stray_staging_dir_is_removed(self, tmp_path):
        target = self._saved_db(tmp_path)
        stray = tmp_path / "db.saving-deadbeef"
        stray.mkdir()
        (stray / "half.npy").write_bytes(b"junk")
        db = Database.load(target)
        assert db.execute("SELECT count(*) FROM t").scalar() == 1
        assert not stray.exists()
        db.close()

    def test_displaced_old_image_is_restored(self, tmp_path):
        target = self._saved_db(tmp_path)
        holding = tmp_path / "db.replaced-cafe"
        holding.mkdir()
        # simulate a kill between rename-aside and rename-into-place
        os.rename(target, holding / "old")
        db = Database.load(target)
        assert db.execute("SELECT count(*) FROM t").scalar() == 1
        assert not holding.exists()
        db.close()

    def test_leftover_holding_dir_with_live_target_is_dropped(self, tmp_path):
        target = self._saved_db(tmp_path)
        holding = tmp_path / "db.replaced-beef"
        (holding / "old").mkdir(parents=True)
        (holding / "old" / "catalog.json").write_text("{}")
        db = Database.load(target)
        assert db.execute("SELECT count(*) FROM t").scalar() == 1
        assert not holding.exists()
        db.close()


class TestGroupCommit:
    def test_batch_concurrent_writers_all_durable(self, tmp_path):
        target = str(tmp_path / "db")
        db = Database.open(target, durability="batch")
        db.execute("CREATE TABLE t (a INT)")

        def worker(base):
            for i in range(15):
                db.execute(f"INSERT INTO t VALUES ({base + i})")

        threads = [
            threading.Thread(target=worker, args=(k * 100,)) for k in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = db.wal_stats()
        assert db.execute("SELECT count(*) FROM t").scalar() == 120
        assert stats["syncs"] <= stats["sync_requests"]
        assert stats["synced_lsn"] == stats["last_lsn"]
        db.close()

        recovered = Database.open(target, durability="off")
        assert recovered.execute("SELECT count(*) FROM t").scalar() == 120
        recovered.close()

    def test_batch_coalesces_while_leader_holds_the_fsync(self, tmp_path):
        wal = WriteAheadLog(
            str(tmp_path / "wal"), durability="batch"
        )
        entered = threading.Event()
        release = threading.Event()
        real_fsync = os.fsync
        calls = []

        def slow_fsync(fd):
            calls.append(fd)
            entered.set()
            release.wait(5)
            real_fsync(fd)

        with wal.mutex:
            first = wal.log_simple("drop_table", table="x")
        leader = threading.Thread(target=wal.sync, args=(first,))
        try:
            os.fsync = slow_fsync
            leader.start()
            assert entered.wait(5)
            # followers append while the leader's fsync is in flight
            followers = []
            with wal.mutex:
                for _ in range(4):
                    followers.append(wal.log_simple("drop_table", table="x"))
            waiters = [
                threading.Thread(target=wal.sync, args=(lsn,))
                for lsn in followers
            ]
            for thread in waiters:
                thread.start()
            release.set()
            leader.join(5)
            for thread in waiters:
                thread.join(5)
        finally:
            os.fsync = real_fsync
            release.set()
        assert wal.synced_lsn == followers[-1]
        # 5 commits, far fewer fsyncs than commits (1 leader pass + the
        # next leader's pass for the followers)
        assert wal.syncs <= 2
        wal.close()


class TestFaultInjector:
    def test_error_action_raises_in_process(self, tmp_path):
        target = str(tmp_path / "db")
        db = Database.open(
            target, durability="commit", faults="wal.append.before:error:2"
        )
        db.execute("CREATE TABLE t (a INT)")  # hit 1: not armed yet
        with pytest.raises(FaultInjectedError):
            db.execute("INSERT INTO t VALUES (1)")  # hit 2: fires
        # DML logs *before* the version install, so the failed insert
        # left neither a record nor a visible row
        assert db.execute("SELECT count(*) FROM t").scalar() == 0
        db.execute("INSERT INTO t VALUES (2)")  # one-shot: works again
        db.close()
        recovered = Database.open(target, durability="off")
        assert recovered.execute("SELECT * FROM t").rows() == [(2,)]
        recovered.close()

    def test_count_arms_nth_hit_and_fires_once(self):
        injector = FaultInjector("p:error:3")
        injector.fire("p")
        injector.fire("p")
        with pytest.raises(FaultInjectedError):
            injector.fire("p")
        injector.fire("p")  # one-shot: the 4th hit is silent
        assert injector.hits["p"] == 4

    def test_dict_spec_and_unknown_points_ignored(self):
        injector = FaultInjector({"a.b": "error"})
        injector.fire("other.point")
        with pytest.raises(FaultInjectedError):
            injector.fire("a.b")

    @pytest.mark.parametrize(
        "spec", ["", ":error", "p:smash", "p:error:0", "p:error:x", "p:a:b:c"]
    )
    def test_bad_specs_rejected(self, spec):
        if spec == "":
            assert FaultInjector(spec)._rules == {}
            return
        with pytest.raises(WalError, match="crashpoint"):
            FaultInjector(spec)

    def test_coerce_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRASHPOINT", "x.y:error:2")
        injector = FaultInjector.coerce(None)
        assert injector is not None
        injector.fire("x.y")
        with pytest.raises(FaultInjectedError):
            injector.fire("x.y")
        monkeypatch.delenv("REPRO_CRASHPOINT")
        assert FaultInjector.coerce(None) is None

    def test_failed_statement_leaves_no_record(self, tmp_path):
        target = str(tmp_path / "db")
        db = Database.open(target, durability="commit")
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(ReproError):
            db.execute("INSERT INTO t VALUES ('not an int', 2)")
        last = db.wal_stats()["last_lsn"]
        db.close()
        scan = scan_wal(default_wal_directory(target), repair=False)
        assert scan.last_lsn == last == 1  # only the CREATE
