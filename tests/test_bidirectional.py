"""Bidirectional BFS — the implemented version of the paper's
"significantly improve the BFS implementation" future work."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphRuntimeError
from repro.graph import (
    GraphLibrary,
    bfs,
    bidirectional_distance,
    build_csr,
    reverse_csr,
)

edges_strategy = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)),
    min_size=1,
    max_size=50,
)


def _csr_from(edges):
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    n = int(max(src.max(), dst.max())) + 1
    return build_csr(src, dst, n), n, src, dst


class TestReverseCsr:
    def test_transposes_edges(self):
        graph, n, src, dst = _csr_from([(0, 1), (1, 2), (0, 2)])
        reversed_graph = reverse_csr(graph)
        forward = sorted(zip(graph.src.tolist(), graph.dst.tolist()))
        backward = sorted(zip(reversed_graph.dst.tolist(), reversed_graph.src.tolist()))
        assert forward == backward

    def test_edge_rows_still_point_to_original(self):
        edges = [(2, 0), (0, 1), (1, 2)]
        graph, n, src, dst = _csr_from(edges)
        reversed_graph = reverse_csr(graph)
        for slot in range(reversed_graph.num_edges):
            original = reversed_graph.edge_rows[slot]
            # reversed edge (src=d, dst=s) must match the original row
            assert dst[original] == reversed_graph.src[slot]
            assert src[original] == reversed_graph.dst[slot]


class TestBidirectionalDistance:
    def test_self_pair(self):
        graph, *_ = _csr_from([(0, 1)])
        distance, path = bidirectional_distance(graph, reverse_csr(graph), 0, 0)
        assert distance == 0 and len(path) == 0

    def test_simple_chain(self):
        graph, *_ = _csr_from([(0, 1), (1, 2), (2, 3)])
        distance, path = bidirectional_distance(graph, reverse_csr(graph), 0, 3)
        assert distance == 3 and len(path) == 3

    def test_unreachable(self):
        graph, *_ = _csr_from([(0, 1), (2, 3)])
        distance, path = bidirectional_distance(graph, reverse_csr(graph), 0, 3)
        assert distance is None and path is None

    def test_first_meeting_is_not_trusted_blindly(self):
        # a long detour meets before the short path does if expansion is
        # unbalanced; the termination bound must still return 2
        edges = [(0, 10), (10, 11), (11, 12), (12, 5), (0, 4), (4, 5)]
        graph, *_ = _csr_from(edges)
        distance, _ = bidirectional_distance(graph, reverse_csr(graph), 0, 5)
        assert distance == 2

    @given(edges_strategy)
    @settings(max_examples=80, deadline=None)
    def test_matches_unidirectional_bfs(self, edges):
        graph, n, src, dst = _csr_from(edges)
        backward = reverse_csr(graph)
        for source in range(0, n, max(1, n // 3)):
            reference = bfs(graph, source)
            for target in range(0, n, max(1, n // 3)):
                distance, path = bidirectional_distance(
                    graph, backward, source, target
                )
                assert distance == reference.cost(target)
                if distance:
                    current = source
                    for row in path:
                        assert src[row] == current
                        current = dst[row]
                    assert current == target

    @given(edges_strategy)
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx(self, edges):
        graph, n, *_ = _csr_from(edges)
        backward = reverse_csr(graph)
        reference = nx.MultiDiGraph()
        reference.add_edges_from(edges)
        distance, _ = bidirectional_distance(graph, backward, edges[0][0], edges[-1][1])
        try:
            expected = nx.shortest_path_length(reference, edges[0][0], edges[-1][1])
        except nx.NetworkXNoPath:
            expected = None
        assert distance == expected


class TestLibraryIntegration:
    def _library(self):
        return GraphLibrary(
            np.array([1, 2, 3, 1]), np.array([2, 3, 4, 4])
        )

    def test_algorithm_parameter(self):
        library = self._library()
        src = library.domain.encode(np.array([1, 4]))
        dst = library.domain.encode(np.array([4, 1]))
        result = library.solve_encoded(
            src, dst, want_cost=True, algorithm="bidirectional"
        )
        assert result.connected.tolist() == [True, False]
        assert result.costs[0] == 1

    def test_agrees_with_default(self):
        library = self._library()
        rng = np.random.default_rng(5)
        src = library.domain.encode(rng.integers(1, 5, 20))
        dst = library.domain.encode(rng.integers(1, 5, 20))
        default = library.solve_encoded(src, dst, want_cost=True)
        bidir = library.solve_encoded(
            src, dst, want_cost=True, algorithm="bidirectional"
        )
        assert default.connected.tolist() == bidir.connected.tolist()
        assert default.costs.tolist() == bidir.costs.tolist()

    def test_reverse_cached(self):
        library = self._library()
        assert library.reverse is library.reverse

    def test_rejected_for_weighted(self):
        library = GraphLibrary(
            np.array([1]), np.array([2]), np.array([3], dtype=np.int64)
        )
        with pytest.raises(GraphRuntimeError, match="unweighted"):
            library.solve_encoded(
                np.array([0]), np.array([1]), algorithm="bidirectional"
            )

    def test_unknown_algorithm_rejected(self):
        library = self._library()
        with pytest.raises(GraphRuntimeError, match="algorithm"):
            library.solve_encoded(np.array([0]), np.array([1]), algorithm="astar")
