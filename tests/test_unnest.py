"""UNNEST and nested-table tests (Section 3.3 semantics)."""

import numpy as np
import pytest

from repro import Database, NestedTableValue
from repro.errors import BindError


@pytest.fixture
def paths_db(chain_db):
    """chain_db plus a nodes table; queries produce paths over `edges`."""
    chain_db.execute("CREATE TABLE nodes (v INT)")
    chain_db.execute("INSERT INTO nodes VALUES (2), (3), (5)")
    return chain_db


PATHS_SQL = (
    "SELECT v, CHEAPEST SUM(e: w) AS (c, p) FROM nodes "
    "WHERE 1 REACHES v OVER edges e EDGE (s, d)"
)


class TestNestedTableValue:
    def test_path_value_surface(self, paths_db):
        rows = paths_db.execute(PATHS_SQL).rows()
        value = rows[0][2]
        assert isinstance(value, NestedTableValue)
        assert value.column_names() == ["s", "d", "w"]

    def test_to_dicts(self, paths_db):
        rows = paths_db.execute(PATHS_SQL + " ORDER BY v LIMIT 1").rows()
        dicts = rows[0][2].to_dicts()
        assert dicts == [{"s": 1, "d": 2, "w": 1}]

    def test_paths_share_one_source_batch(self, paths_db):
        rows = paths_db.execute(PATHS_SQL).rows()
        sources = {id(row[2].source) for row in rows}
        assert len(sources) == 1

    def test_equality_and_emptiness(self):
        class Stub:
            pass

        source = Stub()
        a = NestedTableValue(source, np.array([1, 2]))
        b = NestedTableValue(source, np.array([1, 2]))
        c = NestedTableValue(source, np.array([], dtype=np.int64))
        assert a == b and a != c
        assert c.is_empty and not a.is_empty


class TestUnnestExecution:
    def test_inner_unnest_expands_edges(self, paths_db):
        rows = paths_db.execute(
            f"SELECT T.v, R.s, R.d FROM ({PATHS_SQL}) T, UNNEST(T.p) AS R "
            "ORDER BY T.v, R.s"
        ).rows()
        assert rows == [
            (2, 1, 2),
            (3, 1, 2),
            (3, 2, 3),
            (5, 1, 2),
            (5, 2, 3),
            (5, 3, 4),
            (5, 4, 5),
        ]

    def test_with_ordinality_sequence(self, paths_db):
        rows = paths_db.execute(
            f"SELECT T.v, R.ordinality FROM ({PATHS_SQL}) T, "
            "UNNEST(T.p) WITH ORDINALITY AS R WHERE T.v = 5 ORDER BY 2"
        ).rows()
        assert rows == [(5, 1), (5, 2), (5, 3), (5, 4)]

    def test_ordinality_restarts_per_row(self, paths_db):
        rows = paths_db.execute(
            f"SELECT T.v, R.ordinality FROM ({PATHS_SQL}) T, "
            "UNNEST(T.p) WITH ORDINALITY AS R ORDER BY T.v, 2"
        ).rows()
        firsts = [o for v, o in rows if o == 1]
        assert len(firsts) == 3  # one per nested table

    def test_empty_path_dropped_by_inner(self, paths_db):
        paths_db.execute("INSERT INTO nodes VALUES (1)")  # path to self: empty
        rows = paths_db.execute(
            f"SELECT T.v FROM ({PATHS_SQL}) T, UNNEST(T.p) AS R "
            "WHERE T.v = 1"
        ).rows()
        assert rows == []

    def test_empty_path_kept_by_left_outer(self, paths_db):
        paths_db.execute("INSERT INTO nodes VALUES (1)")
        rows = paths_db.execute(
            f"SELECT T.v, R.s FROM ({PATHS_SQL}) T "
            "LEFT JOIN UNNEST(T.p) AS R ON TRUE WHERE T.v = 1"
        ).rows()
        assert rows == [(1, None)]

    def test_left_outer_ordinality_null_for_empty(self, paths_db):
        paths_db.execute("INSERT INTO nodes VALUES (1)")
        rows = paths_db.execute(
            f"SELECT T.v, R.ordinality FROM ({PATHS_SQL}) T "
            "LEFT JOIN UNNEST(T.p) WITH ORDINALITY AS R ON TRUE "
            "WHERE T.v = 1"
        ).rows()
        assert rows == [(1, None)]

    def test_filter_on_unnested_columns(self, paths_db):
        rows = paths_db.execute(
            f"SELECT T.v, R.s FROM ({PATHS_SQL}) T, UNNEST(T.p) AS R "
            "WHERE R.s = 3"
        ).rows()
        assert rows == [(5, 3)]

    def test_unnest_requires_nested_type(self, paths_db):
        with pytest.raises(BindError, match="nested-table"):
            paths_db.execute(
                f"SELECT 1 FROM ({PATHS_SQL}) T, UNNEST(T.v) AS R"
            )

    def test_unnest_cannot_lead_from_clause(self, paths_db):
        with pytest.raises(BindError, match="first FROM item"):
            paths_db.execute("SELECT 1 FROM UNNEST(p) AS R")

    def test_unnest_twice_same_path(self, paths_db):
        rows = paths_db.execute(
            f"SELECT count(*) FROM ({PATHS_SQL}) T, UNNEST(T.p) AS a, UNNEST(T.p) AS b "
            "WHERE T.v = 3"
        ).rows()
        # 2 edges x 2 edges = 4 combinations for v=3
        assert rows == [(4,)]

    def test_weights_preserved_through_unnest(self, paths_db):
        rows = paths_db.execute(
            f"SELECT sum(R.w) FROM ({PATHS_SQL}) T, UNNEST(T.p) AS R WHERE T.v = 5"
        ).rows()
        assert rows == [(4,)]
