"""Unit tests for the graph runtime: domain encoding, CSR, BFS, Dijkstra,
radix queue and the library facade (the paper's Section 3.2 component)."""

import numpy as np
import pytest

from repro.errors import GraphRuntimeError
from repro.graph import (
    NOT_A_VERTEX,
    UNREACHED,
    CSRGraph,
    GraphLibrary,
    RadixQueue,
    VertexDomain,
    bfs,
    build_csr,
    dijkstra,
    expand_frontier,
    reconstruct_path,
)


class TestVertexDomain:
    def test_vertices_are_union_of_endpoints(self):
        domain = VertexDomain(np.array([5, 1]), np.array([9, 5]))
        assert domain.num_vertices == 3  # {1, 5, 9}

    def test_ids_are_dense_and_sorted(self):
        domain = VertexDomain(np.array([30, 10]), np.array([20, 10]))
        assert domain.encode(np.array([10, 20, 30])).tolist() == [0, 1, 2]

    def test_unknown_key_maps_to_sentinel(self):
        domain = VertexDomain(np.array([1]), np.array([2]))
        assert domain.encode(np.array([99]))[0] == NOT_A_VERTEX

    def test_string_keys(self):
        a = np.array(["x", "y"], dtype=object)
        b = np.array(["z", "x"], dtype=object)
        domain = VertexDomain(a, b)
        assert domain.num_vertices == 3
        assert domain.encode(np.array(["q"], dtype=object))[0] == NOT_A_VERTEX

    def test_decode_roundtrip(self):
        domain = VertexDomain(np.array([7, 3]), np.array([11, 7]))
        ids = domain.encode(np.array([3, 7, 11]))
        assert domain.decode(ids) == [3, 7, 11]

    def test_empty_graph(self):
        domain = VertexDomain(np.empty(0, np.int64), np.empty(0, np.int64))
        assert domain.num_vertices == 0
        assert domain.encode(np.array([1]))[0] == NOT_A_VERTEX


class TestCSR:
    def test_prefix_sum_layout(self):
        # paper: edges sorted by S; outgoing edges of η live in
        # D[S[η-1] .. S[η]-1]
        graph = build_csr(np.array([1, 0, 1, 2]), np.array([2, 1, 0, 0]), 3)
        assert graph.indptr.tolist() == [0, 1, 3, 4]
        assert sorted(graph.neighbors(1).tolist()) == [0, 2]
        assert graph.out_degree(0) == 1

    def test_edge_rows_map_back_to_input(self):
        src = np.array([2, 0, 1])
        dst = np.array([0, 1, 2])
        graph = build_csr(src, dst, 3)
        for slot in range(3):
            original = graph.edge_rows[slot]
            assert src[original] == graph.src[slot]
            assert dst[original] == graph.dst[slot]

    def test_parallel_edges_kept(self):
        graph = build_csr(np.array([0, 0]), np.array([1, 1]), 2)
        assert graph.out_degree(0) == 2

    def test_nonpositive_weight_rejected(self):
        # "Its value must always be strictly greater than 0, otherwise a
        # runtime exception is raised."
        with pytest.raises(GraphRuntimeError, match="strictly greater"):
            build_csr(np.array([0]), np.array([1]), 2, np.array([0]))

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphRuntimeError):
            build_csr(np.array([0]), np.array([1]), 2, np.array([-1.5]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphRuntimeError):
            build_csr(np.array([0]), np.array([1, 2]), 3)

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(GraphRuntimeError):
            build_csr(np.array([0]), np.array([1]), 2, np.array([1, 2]))

    def test_expand_frontier(self):
        graph = build_csr(np.array([0, 0, 1]), np.array([1, 2, 2]), 3)
        slots = expand_frontier(graph.indptr, np.array([0, 1]))
        assert slots.tolist() == [0, 1, 2]

    def test_expand_frontier_empty(self):
        graph = build_csr(np.array([0]), np.array([1]), 2)
        assert len(expand_frontier(graph.indptr, np.array([1]))) == 0


class TestRadixQueue:
    def test_fifo_on_equal_keys(self):
        q = RadixQueue(4)
        q.push(0, 1)
        q.push(0, 2)
        assert {q.pop_min()[1], q.pop_min()[1]} == {1, 2}

    def test_sorted_pops(self):
        q = RadixQueue(100)
        for key in (5, 3, 9, 3, 100, 0):
            q.push(key, key)
        popped = [q.pop_min()[0] for _ in range(6)]
        assert popped == sorted(popped)

    def test_monotone_violation_raises(self):
        q = RadixQueue(10)
        q.push(5, 0)
        q.pop_min()
        with pytest.raises(GraphRuntimeError, match="monotone"):
            q.push(4, 0)

    def test_pop_empty_raises(self):
        with pytest.raises(GraphRuntimeError):
            RadixQueue(1).pop_min()

    def test_interleaved_push_pop(self):
        q = RadixQueue(16)
        q.push(1, 1)
        assert q.pop_min()[0] == 1
        q.push(3, 3)
        q.push(17, 17)  # key may exceed last_min + span transiently? no:
        # 17 - 1 = 16 == span, maximal legal distance
        assert q.pop_min()[0] == 3
        q.push(10, 10)
        assert q.pop_min()[0] == 10
        assert q.pop_min()[0] == 17
        assert len(q) == 0

    def test_len_tracks_size(self):
        q = RadixQueue(4)
        q.push(0, 0)
        q.push(1, 1)
        assert len(q) == 2
        q.pop_min()
        assert len(q) == 1


def diamond() -> CSRGraph:
    """0 -> 1 -> 3 (w 1+1), 0 -> 2 -> 3 (w 10+10), 0 -> 3 (w 5)."""
    return build_csr(
        np.array([0, 1, 0, 2, 0]),
        np.array([1, 3, 2, 3, 3]),
        4,
        np.array([1, 1, 10, 10, 5], dtype=np.int64),
    )


class TestBfs:
    def test_distances(self):
        graph = build_csr(np.array([0, 1, 2]), np.array([1, 2, 3]), 4)
        result = bfs(graph, 0)
        assert result.dist.tolist() == [0, 1, 2, 3]

    def test_unreached_marker(self):
        graph = build_csr(np.array([0]), np.array([1]), 3)
        result = bfs(graph, 0)
        assert result.dist[2] == UNREACHED and result.cost(2) is None

    def test_direction_matters(self):
        graph = build_csr(np.array([0]), np.array([1]), 2)
        assert bfs(graph, 1).cost(0) is None

    def test_early_exit_still_correct_for_target(self):
        graph = build_csr(np.arange(9), np.arange(1, 10), 10)
        result = bfs(graph, 0, targets=np.array([4]))
        assert result.cost(4) == 4

    def test_path_reconstruction(self):
        graph = diamond()
        result = bfs(graph, 0)
        path = reconstruct_path(graph, result, 3)
        assert len(path) == 1  # direct hop is the BFS shortest
        assert path is not None

    def test_path_to_source_is_empty(self):
        graph = diamond()
        result = bfs(graph, 0)
        assert reconstruct_path(graph, result, 0).tolist() == []

    def test_path_to_unreached_is_none(self):
        graph = build_csr(np.array([0]), np.array([1]), 3)
        result = bfs(graph, 0)
        assert reconstruct_path(graph, result, 2) is None


class TestDijkstra:
    def test_weighted_distances(self):
        result = dijkstra(diamond(), 0)
        assert result.dist.tolist() == [0, 1, 10, 2]

    def test_path_follows_cheapest_route(self):
        graph = diamond()
        result = dijkstra(graph, 0)
        path = reconstruct_path(graph, result, 3)
        # original edge rows: 0->1 is row 0, 1->3 is row 1
        assert path.tolist() == [0, 1]

    def test_radix_and_binary_agree(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            n, m = 30, 120
            src = rng.integers(0, n, m)
            dst = rng.integers(0, n, m)
            w = rng.integers(1, 50, m).astype(np.int64)
            graph = build_csr(src, dst, n, w)
            a = dijkstra(graph, 0, queue="radix")
            b = dijkstra(graph, 0, queue="binary")
            assert a.dist.tolist() == b.dist.tolist()

    def test_float_weights_use_binary(self):
        graph = build_csr(
            np.array([0, 1]), np.array([1, 2]), 3, np.array([0.5, 0.25])
        )
        result = dijkstra(graph, 0)
        assert result.dist[2] == pytest.approx(0.75)

    def test_radix_on_floats_rejected(self):
        graph = build_csr(np.array([0]), np.array([1]), 2, np.array([0.5]))
        with pytest.raises(GraphRuntimeError, match="integer"):
            dijkstra(graph, 0, queue="radix")

    def test_unweighted_graph_rejected(self):
        graph = build_csr(np.array([0]), np.array([1]), 2)
        with pytest.raises(GraphRuntimeError, match="weight"):
            dijkstra(graph, 0)

    def test_unknown_queue_rejected(self):
        graph = build_csr(np.array([0]), np.array([1]), 2, np.array([1]))
        with pytest.raises(GraphRuntimeError):
            dijkstra(graph, 0, queue="fibonacci")

    def test_early_exit_target_distance_final(self):
        graph = diamond()
        result = dijkstra(graph, 0, targets=np.array([3]))
        assert result.cost(3) == 2


class TestGraphLibrary:
    def test_reachability_mask(self):
        lib = GraphLibrary(np.array([1, 2]), np.array([2, 3]))
        result = lib.solve(np.array([1, 3, 99]), np.array([3, 1, 1]))
        assert result.connected.tolist() == [True, False, False]

    def test_self_reachability_is_true_for_vertices(self):
        # P(x, x) holds via the empty path when x is a vertex
        lib = GraphLibrary(np.array([1]), np.array([2]))
        result = lib.solve(np.array([1]), np.array([1]), want_cost=True)
        assert result.connected[0] and result.costs[0] == 0

    def test_non_vertex_never_connected(self):
        lib = GraphLibrary(np.array([1]), np.array([2]))
        result = lib.solve(np.array([99]), np.array([99]))
        assert not result.connected[0]

    def test_costs_for_unconnected_stay_minus_one(self):
        lib = GraphLibrary(np.array([1]), np.array([2]))
        result = lib.solve(np.array([2]), np.array([1]), want_cost=True)
        assert result.costs[0] == -1

    def test_batch_grouped_by_source(self):
        lib = GraphLibrary(np.array([1, 2, 3]), np.array([2, 3, 4]))
        sources = np.array([1, 1, 1, 2])
        dests = np.array([2, 3, 4, 4])
        result = lib.solve(sources, dests, want_cost=True)
        assert result.costs.tolist() == [1, 2, 3, 2]

    def test_paths_reference_original_rows(self):
        src = np.array([10, 20])
        dst = np.array([20, 30])
        lib = GraphLibrary(src, dst)
        result = lib.solve(np.array([10]), np.array([30]), want_path=True)
        path = result.paths[0]
        assert src[path[0]] == 10 and dst[path[1]] == 30

    def test_weighted_prefers_cheap_detour(self):
        lib = GraphLibrary(
            np.array([1, 1, 2]),
            np.array([3, 2, 3]),
            np.array([10, 1, 1], dtype=np.int64),
        )
        result = lib.solve(np.array([1]), np.array([3]), want_cost=True)
        assert result.costs[0] == 2

    def test_solve_length_mismatch(self):
        lib = GraphLibrary(np.array([1]), np.array([2]))
        with pytest.raises(GraphRuntimeError):
            lib.solve(np.array([1, 2]), np.array([1]))

    def test_deterministic_path_choice(self):
        # two equal-cost paths; the library must return one, consistently
        src = np.array([0, 0, 1, 2])
        dst = np.array([1, 2, 3, 3])
        lib = GraphLibrary(src, dst)
        p1 = lib.solve(np.array([0]), np.array([3]), want_path=True).paths[0]
        p2 = lib.solve(np.array([0]), np.array([3]), want_path=True).paths[0]
        assert p1.tolist() == p2.tolist()
