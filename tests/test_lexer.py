"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import LexError
from repro.sql import TokenType, tokenize


def kinds(sql):
    return [t.type for t in tokenize(sql)[:-1]]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestBasics:
    def test_empty_input_is_just_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].type == TokenType.EOF

    def test_keywords_uppercased(self):
        assert values("select from where") == ["SELECT", "FROM", "WHERE"]

    def test_identifier_preserved(self):
        token = tokenize("FirstName")[0]
        assert token.type == TokenType.IDENT
        assert token.value == "FirstName"

    def test_extension_keywords(self):
        assert values("CHEAPEST REACHES EDGE UNNEST OVER ORDINALITY") == [
            "CHEAPEST",
            "REACHES",
            "EDGE",
            "UNNEST",
            "OVER",
            "ORDINALITY",
        ]

    def test_param_marker(self):
        assert kinds("?") == [TokenType.PARAM]


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.type == TokenType.INTEGER and token.value == 42

    def test_float(self):
        token = tokenize("4.25")[0]
        assert token.type == TokenType.FLOAT and token.value == 4.25

    def test_leading_dot_float(self):
        token = tokenize(".5")[0]
        assert token.type == TokenType.FLOAT and token.value == 0.5

    def test_exponent(self):
        token = tokenize("1e3")[0]
        assert token.type == TokenType.FLOAT and token.value == 1000.0

    def test_negative_is_operator_plus_number(self):
        assert kinds("-5") == [TokenType.OPERATOR, TokenType.INTEGER]

    def test_integer_then_dot_ident(self):
        # "t.x" style access after a number must not absorb the dot
        assert kinds("1 . x") == [
            TokenType.INTEGER,
            TokenType.PUNCT,
            TokenType.IDENT,
        ]


class TestStrings:
    def test_simple(self):
        token = tokenize("'abc'")[0]
        assert token.type == TokenType.STRING and token.value == "abc"

    def test_quote_escape(self):
        token = tokenize("''''")[0]
        assert token.value == "'"

    def test_embedded_escape(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_unterminated_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_quoted_identifier(self):
        token = tokenize('"From"')[0]
        assert token.type == TokenType.IDENT and token.value == "From"

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(LexError):
            tokenize('"oops')


class TestOperators:
    def test_multichar_greedy(self):
        assert values("<= >= <> != ||") == ["<=", ">=", "<>", "!=", "||"]

    def test_arithmetic(self):
        assert values("+ - * / %") == ["+", "-", "*", "/", "%"]

    def test_unknown_char_raises(self):
        with pytest.raises(LexError):
            tokenize("@")


class TestComments:
    def test_line_comment(self):
        assert values("1 -- comment\n2") == [1, 2]

    def test_block_comment(self):
        assert values("1 /* x */ 2") == [1, 2]

    def test_unterminated_block_raises(self):
        with pytest.raises(LexError):
            tokenize("/* oops")

    def test_double_dash_inside_string_kept(self):
        assert tokenize("'a--b'")[0].value == "a--b"


class TestPositions:
    def test_line_column_tracking(self):
        tokens = tokenize("SELECT\n  x")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("a\n  @")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3
