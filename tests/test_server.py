"""The database server: wire protocol, admission control, lifecycle.

Every suite here drives a real asyncio server (:class:`ServerThread`)
over real sockets with the blocking client library — no mocked
transport.  A ``SlowDatabase`` subclass turns statements containing
``slow_marker`` into deterministic long-running work, which is how
saturation (backpressure), timeouts and graceful drain are exercised
without racing on real query runtimes.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import (
    BackpressureError,
    CatalogError,
    Database,
    ParseError,
    ProtocolError,
    ServerShutdownError,
    StatementTimeoutError,
    TransactionConflictError,
)
from repro.client import Client
from repro.server import ReproServer, ServerThread, default_queue_depth
from repro.server.protocol import HEADER, encode_frame, frame_length


class SlowDatabase(Database):
    """Statements containing ``slow_marker`` sleep before executing —
    a deterministic long statement for saturation/drain tests."""

    SLEEP = 0.6

    def execute(self, sql, params=(), *, session=None):
        if "slow_marker" in sql:
            time.sleep(self.SLEEP)
        return super().execute(sql, params, session=session)


def no_server_threads():
    names = [t.name for t in threading.enumerate() if t.is_alive()]
    return [n for n in names if n.startswith(("repro-serve", "repro-server"))]


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(n)
        assert chunk, "server closed the connection mid-frame"
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# basics over the wire
# ---------------------------------------------------------------------------
class TestWireBasics:
    @pytest.fixture()
    def served(self):
        db = Database()
        with ServerThread(db) as st:
            yield st
        db.close()

    def test_ddl_dml_query_round_trip(self, served):
        with Client(*served.address) as client:
            assert client.execute("CREATE TABLE t (x INT, s VARCHAR)").rowcount == 0
            assert (
                client.execute(
                    "INSERT INTO t VALUES (?, ?), (?, ?)", (1, "a", 2, None)
                ).rowcount
                == 2
            )
            result = client.execute("SELECT x, s FROM t ORDER BY x")
            assert result.column_names == ["x", "s"]
            assert result.rows() == [(1, "a"), (2, None)]
            assert len(result) == 2 and result.is_query

    def test_dates_and_floats_round_trip_exactly(self, served):
        import datetime

        with Client(*served.address) as client:
            client.execute("CREATE TABLE t (d DATE, v DOUBLE)")
            client.execute(
                "INSERT INTO t VALUES (?, ?)", (datetime.date(2021, 2, 3), 0.1)
            )
            row = client.execute("SELECT d, v FROM t").rows()[0]
            assert row == (datetime.date(2021, 2, 3), 0.1)
            assert repr(row[1]) == "0.1"  # json round-trips repr exactly

    def test_scalar_and_to_dicts(self, served):
        with Client(*served.address) as client:
            assert client.execute("SELECT 40 + 2 AS answer").scalar() == 42
            assert client.execute("SELECT 1 AS a, 2 AS b").to_dicts() == [
                {"a": 1, "b": 2}
            ]

    def test_prepared_statement_reuse_hits_plan_cache(self, served):
        with Client(*served.address) as client:
            client.execute("CREATE TABLE t (x INT)")
            client.execute("INSERT INTO t VALUES (1), (2), (3)")
            stmt = client.prepare("SELECT sum(x) FROM t WHERE x >= ?")
            before = served.server.db.cache_stats()["plan_cache"]["hits"]
            assert stmt.execute((1,)).scalar() == 6
            assert stmt.execute((2,)).scalar() == 5
            assert stmt.execute((3,)).scalar() == 3
            after = served.server.db.cache_stats()["plan_cache"]["hits"]
            assert after >= before + 3
            stmt.close()
            with pytest.raises(ProtocolError, match="handle"):
                stmt.execute((1,))

    def test_ping_reports_stats(self, served):
        with Client(*served.address) as client:
            stats = client.ping()
            assert stats["connections"] == 1
            assert stats["admission"]["limit"] >= 1

    def test_unknown_op_is_typed_protocol_error(self, served):
        with Client(*served.address) as client:
            with pytest.raises(ProtocolError, match="unknown request op"):
                client._request({"op": "frobnicate"})

    def test_malformed_frame_answered_then_disconnected(self, served):
        host, port = served.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(HEADER.pack(9) + b"not json!")
            header = _recv_exactly(sock, HEADER.size)
            body = _recv_exactly(sock, frame_length(header))
            assert b"PROTOCOL_ERROR" in body
            assert sock.recv(1) == b""  # server hung up after answering

    def test_graph_query_paths_over_the_wire(self, served):
        with Client(*served.address) as client:
            client.execute("CREATE TABLE edges (s INT, d INT, w DOUBLE)")
            client.execute(
                "INSERT INTO edges VALUES (1, 2, 1.0), (2, 3, 2.0), (1, 3, 9.0)"
            )
            result = client.execute(
                "SELECT CHEAPEST SUM(e: w) AS (c, p) "
                "WHERE 1 REACHES 3 OVER edges e EDGE (s, d)"
            )
            cost, path = result.rows()[0]
            assert cost == 3.0
            assert path.to_rows() == [(1, 2, 1.0), (2, 3, 2.0)]
            assert path.column_names() == ["s", "d", "w"]


# ---------------------------------------------------------------------------
# typed errors over the wire
# ---------------------------------------------------------------------------
class TestTypedErrorsOverWire:
    @pytest.fixture()
    def served(self):
        db = Database()
        with ServerThread(db) as st:
            yield st
        db.close()

    def test_parse_error_round_trips_typed(self, served):
        with Client(*served.address) as client:
            with pytest.raises(ParseError) as excinfo:
                client.execute("SELEC 1")
            assert excinfo.value.code == "PARSE_ERROR"
            assert "SELEC" in str(excinfo.value)

    def test_catalog_error_round_trips_typed(self, served):
        with Client(*served.address) as client:
            with pytest.raises(CatalogError, match="'nope'"):
                client.execute("SELECT 1 FROM nope")

    def test_no_tracebacks_cross_the_wire(self, served):
        with Client(*served.address) as client:
            try:
                client.execute("SELECT zz FROM nowhere")
            except Exception as exc:  # noqa: BLE001
                assert "Traceback" not in str(exc)


# ---------------------------------------------------------------------------
# transactions and isolation across socket sessions
# ---------------------------------------------------------------------------
class TestTransactionsOverWire:
    @pytest.fixture()
    def served(self):
        db = Database()
        db.execute("CREATE TABLE accounts (id INT, balance INT)")
        db.execute("INSERT INTO accounts VALUES (1, 100), (2, 200)")
        with ServerThread(db) as st:
            yield st
        db.close()

    def test_snapshot_isolation_between_connections(self, served):
        with Client(*served.address) as a, Client(*served.address) as b:
            a.execute("BEGIN")
            assert a.execute("SELECT count(*) FROM accounts").scalar() == 2
            b.execute("INSERT INTO accounts VALUES (3, 300)")
            # A still reads its BEGIN-time snapshot; B sees its own write
            assert a.execute("SELECT count(*) FROM accounts").scalar() == 2
            assert b.execute("SELECT count(*) FROM accounts").scalar() == 3
            a.execute("COMMIT")
            assert a.execute("SELECT count(*) FROM accounts").scalar() == 3

    def test_read_your_own_writes_in_wire_transaction(self, served):
        with Client(*served.address) as client:
            client.execute("BEGIN")
            client.execute("UPDATE accounts SET balance = balance + 1 WHERE id = 1")
            assert (
                client.execute(
                    "SELECT balance FROM accounts WHERE id = 1"
                ).scalar()
                == 101
            )
            client.execute("ROLLBACK")
            assert (
                client.execute(
                    "SELECT balance FROM accounts WHERE id = 1"
                ).scalar()
                == 100
            )

    def test_write_write_conflict_is_typed_over_wire(self, served):
        with Client(*served.address) as a, Client(*served.address) as b:
            a.execute("BEGIN")
            b.execute("BEGIN")
            a.execute("UPDATE accounts SET balance = 0 WHERE id = 1")
            b.execute("UPDATE accounts SET balance = 1 WHERE id = 1")
            a.execute("COMMIT")  # first committer wins
            with pytest.raises(TransactionConflictError) as excinfo:
                b.execute("COMMIT")
            assert excinfo.value.code == "TRANSACTION_CONFLICT"

    def test_disconnect_rolls_back_open_transaction(self, served):
        client = Client(*served.address)
        client.execute("BEGIN")
        client.execute("INSERT INTO accounts VALUES (99, 0)")
        client.close()  # server session closes -> implicit rollback
        deadline = time.time() + 5
        with Client(*served.address) as other:
            while time.time() < deadline:
                n = other.execute(
                    "SELECT count(*) FROM accounts WHERE id = 99"
                ).scalar()
                if n == 0:
                    break
                time.sleep(0.02)
            assert n == 0


# ---------------------------------------------------------------------------
# admission control and timeouts
# ---------------------------------------------------------------------------
class TestAdmissionControl:
    def test_default_queue_depth_sized_against_workers(self):
        assert default_queue_depth(1) == 8
        assert default_queue_depth(4) == 16
        assert default_queue_depth(64) == 256

    def test_queue_overflow_returns_typed_backpressure(self):
        db = SlowDatabase()
        with ServerThread(db, max_queue=1, executor_workers=1) as st:
            host, port = st.address
            done = threading.Event()

            def occupy():
                with Client(host, port) as c:
                    c.execute("SELECT 'slow_marker'")
                    done.set()

            thread = threading.Thread(target=occupy)
            thread.start()
            time.sleep(SlowDatabase.SLEEP / 3)  # the slow statement is in flight
            with Client(host, port) as client:
                with pytest.raises(BackpressureError) as excinfo:
                    client.execute("SELECT 1")
                assert excinfo.value.code == "BACKPRESSURE"
                # rejected without executing: the engine never saw it
                assert st.server.admission.rejected >= 1
            thread.join()
            assert done.is_set()
            # the slot drains once the slow statement finishes
            deadline = time.time() + 5
            with Client(host, port) as client:
                while time.time() < deadline:
                    try:
                        assert client.execute("SELECT 2").scalar() == 2
                        break
                    except BackpressureError:
                        time.sleep(0.02)
        db.close()

    def test_statement_timeout_is_typed_and_connection_survives(self):
        db = SlowDatabase()
        with ServerThread(db, statement_timeout=0.05, executor_workers=1) as st:
            with Client(*st.address) as client:
                with pytest.raises(StatementTimeoutError) as excinfo:
                    client.execute("SELECT 'slow_marker'")
                assert excinfo.value.code == "STATEMENT_TIMEOUT"
                # same connection keeps working once the worker frees up
                # (retries themselves queue behind the slow statement and
                # can time out or trip backpressure until it finishes)
                deadline = time.time() + 5
                while time.time() < deadline:
                    try:
                        assert client.execute("SELECT 1").scalar() == 1
                        break
                    except (StatementTimeoutError, BackpressureError):
                        time.sleep(0.1)
        db.close()

    def test_client_timeout_cannot_exceed_server_ceiling(self):
        db = SlowDatabase()
        with ServerThread(db, statement_timeout=0.05, executor_workers=1) as st:
            with Client(*st.address) as client:
                with pytest.raises(StatementTimeoutError):
                    client.execute("SELECT 'slow_marker'", timeout=30.0)
        db.close()


# ---------------------------------------------------------------------------
# disconnects and shutdown
# ---------------------------------------------------------------------------
class TestDisconnectAndShutdown:
    def test_mid_statement_disconnect_leaves_server_healthy(self):
        db = SlowDatabase()
        with ServerThread(db, executor_workers=1) as st:
            host, port = st.address
            sock = socket.create_connection((host, port), timeout=10)
            sock.sendall(
                encode_frame({"op": "execute", "sql": "SELECT 'slow_marker'"})
            )
            sock.close()  # gone before the statement finishes
            time.sleep(SlowDatabase.SLEEP / 3)
            with Client(host, port) as client:
                deadline = time.time() + 5
                while time.time() < deadline:
                    try:
                        assert client.execute("SELECT 7").scalar() == 7
                        break
                    except BackpressureError:
                        time.sleep(0.02)
                # the abandoned statement's slot was released on completion
                deadline = time.time() + 5
                while time.time() < deadline:
                    if client.ping()["admission"]["inflight"] == 0:
                        break
                    time.sleep(0.02)
                assert client.ping()["admission"]["inflight"] == 0
        db.close()

    def test_graceful_shutdown_drains_inflight_statements(self):
        db = SlowDatabase()
        st = ServerThread(db, executor_workers=1).__enter__()
        host, port = st.address
        results = {}

        def run_slow():
            with Client(host, port) as c:
                results["rows"] = c.execute("SELECT 'slow_marker' AS m").rows()

        thread = threading.Thread(target=run_slow)
        thread.start()
        time.sleep(SlowDatabase.SLEEP / 3)  # statement is in flight
        st.stop()  # graceful: drains before closing listeners
        thread.join(timeout=30)
        assert results["rows"] == [("slow_marker",)]
        with pytest.raises(OSError):
            Client(host, port)  # listener is gone
        assert no_server_threads() == []
        db.close()

    def test_draining_server_refuses_new_statements_typed(self):
        db = SlowDatabase()
        st = ServerThread(db, executor_workers=1).__enter__()
        host, port = st.address
        holder_started = threading.Event()

        def run_slow():
            with Client(host, port) as c:
                holder_started.set()
                c.execute("SELECT 'slow_marker'")

        bystander = Client(host, port)  # connected before the drain begins
        thread = threading.Thread(target=run_slow)
        thread.start()
        holder_started.wait()
        time.sleep(SlowDatabase.SLEEP / 3)
        stopper = threading.Thread(target=st.stop)
        stopper.start()
        time.sleep(0.05)  # let shutdown mark the server draining
        with pytest.raises((ServerShutdownError, ProtocolError)):
            bystander.execute("SELECT 1")
        bystander.close()
        thread.join(timeout=30)
        stopper.join(timeout=30)
        db.close()

    def test_server_owning_database_closes_it(self):
        db = Database()
        st = ServerThread(db, own_database=True).__enter__()
        with Client(*st.address) as client:
            client.execute("SELECT 1")
        st.stop()
        assert db.closed


# ---------------------------------------------------------------------------
# the acceptance bar: 32 concurrent clients, bit-identical to in-process
# ---------------------------------------------------------------------------
N_CLIENTS = 32


def _client_workload(executor, cid: int) -> list[str]:
    """One client's mixed read/write/transaction workload; returns the
    collected query results as reprs (bit-exact comparison material).
    ``executor`` is anything with execute/prepare — a wire Client or an
    in-process Session."""
    collected = []
    executor.execute(f"CREATE TABLE c{cid} (x INT, v DOUBLE)")
    insert = executor.prepare(f"INSERT INTO c{cid} VALUES (?, ?)")
    for i in range(20):
        insert.execute((i, i * 0.1 + cid))
    executor.execute(f"UPDATE c{cid} SET v = v + ? WHERE x < ?", (0.5, 10))
    executor.execute(f"DELETE FROM c{cid} WHERE x = ?", (19,))
    executor.execute("BEGIN")
    insert.execute((100, 1.25))
    insert.execute((101, 2.5))
    collected.append(repr(
        executor.execute(f"SELECT count(*) FROM c{cid}").rows()
    ))  # read-your-own-writes inside the transaction
    executor.execute("COMMIT")
    collected.append(repr(
        executor.execute(
            f"SELECT count(*), sum(x), sum(v) FROM c{cid}"
        ).rows()
    ))
    collected.append(repr(
        executor.execute(
            f"SELECT r.grp, count(*), sum(c{cid}.v) FROM c{cid} "
            f"JOIN ref r ON c{cid}.x = r.k GROUP BY r.grp ORDER BY r.grp"
        ).rows()
    ))
    collected.append(repr(
        executor.execute(
            f"SELECT x, v FROM c{cid} WHERE x < ? ORDER BY x", (5,)
        ).rows()
    ))
    return collected


def _make_ref(db: Database) -> None:
    db.execute("CREATE TABLE ref (k INT, grp INT)")
    db.table("ref").insert_rows([(k, k % 4) for k in range(110)])


class TestManyConcurrentClients:
    def test_32_clients_bit_identical_to_in_process(self):
        # oracle: the same per-client workloads through in-process sessions
        oracle_db = Database()
        _make_ref(oracle_db)
        expected = {}
        for cid in range(N_CLIENTS):
            with oracle_db.connect() as session:
                expected[cid] = _client_workload(session, cid)
        oracle_db.close()

        served_db = Database()
        _make_ref(served_db)
        actual: dict[int, list] = {}
        failures: list = []
        # queue depth >= client count: every client may have a statement
        # in flight at once, and none of them should see backpressure
        with ServerThread(served_db, max_queue=2 * N_CLIENTS) as st:
            host, port = st.address

            def run(cid: int) -> None:
                try:
                    with Client(host, port, timeout=120) as client:
                        actual[cid] = _client_workload(client, cid)
                except Exception as exc:  # noqa: BLE001
                    failures.append((cid, exc))

            threads = [
                threading.Thread(target=run, args=(cid,))
                for cid in range(N_CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)
        assert not failures, failures
        assert len(actual) == N_CLIENTS
        for cid in range(N_CLIENTS):
            assert actual[cid] == expected[cid], f"client {cid} diverged"
        served_db.close()
        assert no_server_threads() == []


@pytest.mark.stress
class TestServerStress:
    def test_shared_table_churn_with_conflict_retries(self):
        """16 clients hammer one shared table with transactional
        increments; every conflict must surface as the typed error and
        every increment must land exactly once."""
        db = Database()
        db.execute("CREATE TABLE counter (id INT, n INT)")
        db.execute("INSERT INTO counter VALUES (1, 0)")
        increments_per_client = 5
        n_clients = 16
        with ServerThread(db, max_queue=2 * n_clients) as st:
            host, port = st.address
            errors: list = []

            def run(cid: int) -> None:
                try:
                    with Client(host, port, timeout=120) as client:
                        for _ in range(increments_per_client):
                            while True:
                                client.execute("BEGIN")
                                try:
                                    client.execute(
                                        "UPDATE counter SET n = n + 1 "
                                        "WHERE id = 1"
                                    )
                                    client.execute("COMMIT")
                                    break
                                except TransactionConflictError:
                                    continue  # retry against fresh state
                except Exception as exc:  # noqa: BLE001
                    errors.append((cid, exc))

            threads = [
                threading.Thread(target=run, args=(c,)) for c in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600)
            assert not errors, errors
            with Client(host, port) as client:
                total = client.execute(
                    "SELECT n FROM counter WHERE id = 1"
                ).scalar()
        assert total == n_clients * increments_per_client
        db.close()
