"""Concurrent sessions, MVCC snapshot isolation, and cache invalidation.

The default-run tests prove the ISSUE's acceptance criteria directly:
plan-cache hits on re-execution, DML invalidating both the plan cache
and the graph-index cache, and — since the MVCC refactor — snapshot
isolation semantics: readers pinned to a snapshot see no in-flight
writes, ROLLBACK leaves tables byte-identical to the pre-transaction
state, and write-write conflicts surface as a typed error at COMMIT.
The ``stress``-marked suites hammer a shared database from many threads
(mixed DML / DDL, and churning writers against long snapshot readers)
and then audit the final state against a fresh, single-threaded engine.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import Database, ReproError
from repro.errors import (
    ExecutionError,
    TransactionConflictError,
    TransactionError,
)


@pytest.fixture
def graph_db() -> Database:
    db = Database()
    db.executescript(
        """
        CREATE TABLE e (s INT, d INT, w INT);
        INSERT INTO e VALUES (1, 2, 1), (2, 3, 2), (3, 4, 1), (1, 4, 10);
        """
    )
    return db


class TestSessions:
    def test_connect_returns_session(self, graph_db):
        with graph_db.connect() as session:
            assert session.execute("SELECT count(*) FROM e").scalar() == 4

    def test_sessions_share_one_database(self, graph_db):
        s1, s2 = graph_db.connect(), graph_db.connect()
        s1.execute("INSERT INTO e VALUES (4, 5, 1)")
        assert s2.execute("SELECT count(*) FROM e").scalar() == 5

    def test_closed_session_rejects_statements(self, graph_db):
        session = graph_db.connect()
        session.close()
        with pytest.raises(ExecutionError, match="closed"):
            session.execute("SELECT 1")

    def test_executemany_prepares_once(self, graph_db):
        session = graph_db.connect()
        inserted = session.executemany(
            "INSERT INTO e VALUES (?, ?, ?)",
            [(10, 11, 1), (11, 12, 1), (12, 13, 1)],
        )
        assert inserted == 3
        assert session.execute("SELECT count(*) FROM e").scalar() == 7


class TestPlanCache:
    def test_reexecution_hits_the_cache(self, graph_db):
        sql = "SELECT CHEAPEST SUM(k: w) WHERE ? REACHES ? OVER e k EDGE (s, d)"
        before = graph_db.plan_cache.stats()["hits"]
        assert graph_db.execute(sql, (1, 4)).scalar() == 4
        assert graph_db.execute(sql, (1, 3)).scalar() == 3
        assert graph_db.execute(sql, (2, 4)).scalar() == 3
        assert graph_db.plan_cache.stats()["hits"] >= before + 2

    def test_prepared_statement_hits_from_first_execute(self, graph_db):
        session = graph_db.connect()
        stmt = session.prepare("SELECT count(*) FROM e WHERE w = ?")
        hits_before = graph_db.plan_cache.stats()["hits"]
        assert stmt.execute((1,)).scalar() == 2
        assert stmt.execute((10,)).scalar() == 1
        assert graph_db.plan_cache.stats()["hits"] == hits_before + 2

    def test_hit_counters_surface_via_explain(self, graph_db):
        sql = "SELECT count(*) FROM e"
        graph_db.execute(sql)
        graph_db.execute(sql)
        text = graph_db.explain(sql)
        assert "plan cache: hits=" in text
        # explain() itself is a hit: the entry was cached by execute()
        hits = int(text.split("plan cache: hits=")[1].split()[0])
        assert hits >= 2

    def test_hit_status_surfaces_via_profiler(self, graph_db):
        sql = "SELECT count(*) FROM e"
        _, first = graph_db.profile(sql)
        assert "plan cache: MISS" in first
        _, second = graph_db.profile(sql)
        assert "plan cache: HIT" in second

    def test_dml_invalidates_plan_cache_entry(self, graph_db):
        sql = "SELECT count(*) FROM e"
        assert graph_db.execute(sql).scalar() == 4
        assert graph_db.plan_cache.contains(sql)
        graph_db.execute("INSERT INTO e VALUES (7, 8, 1)")
        assert not graph_db.plan_cache.contains(sql)
        assert graph_db.plan_cache.stats()["invalidations"] >= 1
        # and the re-prepared plan sees the new row
        assert graph_db.execute(sql).scalar() == 5

    def test_ddl_invalidates_plan_cache_entry(self, graph_db):
        sql = "SELECT count(*) FROM e"
        graph_db.execute(sql)
        assert graph_db.plan_cache.contains(sql)
        graph_db.execute("DROP TABLE e")
        assert not graph_db.plan_cache.contains(sql)
        with pytest.raises(ReproError):
            graph_db.execute(sql)

    def test_drop_and_recreate_does_not_serve_stale_plan(self, graph_db):
        sql = "SELECT * FROM e"
        assert len(graph_db.execute(sql)) == 4
        graph_db.execute("DROP TABLE e")
        graph_db.execute("CREATE TABLE e (s INT, d INT)")  # narrower schema
        graph_db.execute("INSERT INTO e VALUES (1, 2)")
        rows = graph_db.execute(sql).rows()
        assert rows == [(1, 2)]

    def test_lru_capacity_bounds_entries(self):
        # parameterize=False: with literal normalization on, these
        # statements would all share one normalized plan instead of
        # filling the exact-text LRU
        db = Database(plan_cache_capacity=4, parameterize=False)
        db.execute("CREATE TABLE t (a INT)")
        for i in range(10):
            db.execute(f"SELECT a + {i} FROM t")
        stats = db.plan_cache.stats()
        assert stats["entries"] <= 4
        assert stats["evictions"] >= 6

    def test_normalized_statements_share_one_plan(self):
        db = Database(plan_cache_capacity=4)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        for i in range(10):
            assert len(db.execute(f"SELECT a FROM t WHERE a <= {i}")) == min(i, 3)
        stats = db.plan_cache.stats()
        assert stats["normalized_hits"] >= 8
        assert stats["normalized_entries"] >= 1

    def test_unrelated_table_write_keeps_entry(self, graph_db):
        graph_db.execute("CREATE TABLE other (x INT)")
        sql = "SELECT count(*) FROM e"
        graph_db.execute(sql)
        graph_db.execute("INSERT INTO other VALUES (1)")
        assert graph_db.plan_cache.contains(sql)

    def test_cached_insert_survives_its_own_writes(self, graph_db):
        # an INSERT's target is a schema-only dependency: repeat
        # executions must be hits, not self-invalidations
        sql = "INSERT INTO e VALUES (?, ?, ?)"
        session = graph_db.connect()
        inserted = session.executemany(
            sql, [(50 + i, 51 + i, 1) for i in range(20)]
        )
        assert inserted == 20
        stats = graph_db.plan_cache.stats()
        assert stats["hits"] >= 19  # first execution fills, the rest hit
        assert graph_db.plan_cache.contains(sql)
        # but a SELECT over the same table was invalidated by each write
        assert graph_db.execute("SELECT count(*) FROM e").scalar() == 24

    def test_drop_table_drops_dependent_graph_indices(self, graph_db, tmp_path):
        graph_db.execute("CREATE GRAPH INDEX gi ON e EDGE (s, d)")
        graph_db.execute("DROP TABLE e")
        assert graph_db.graph_indices.names() == []
        # a save/load round-trip must not trip over orphaned specs
        graph_db.execute("CREATE TABLE keepme (x INT)")
        target = str(tmp_path / "db")
        graph_db.save(target)
        loaded = Database.load(target)
        assert loaded.catalog.table_names() == ["keepme"]


class TestGraphIndexCacheInvalidation:
    def test_dml_invalidates_graph_index_cache(self):
        # overlay off: the pre-overlay contract — committed DML drops
        # the cached CSR and the next query rebuilds from scratch
        db = Database(graph_overlay=False)
        db.executescript(
            """
            CREATE TABLE e (s INT, d INT, w INT);
            INSERT INTO e VALUES (1, 2, 1), (2, 3, 2), (3, 4, 1), (1, 4, 10);
            """
        )
        db.execute("CREATE GRAPH INDEX gi ON e EDGE (s, d)")
        assert db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 4 OVER e EDGE (s, d)"
        ).scalar() == 1
        stats = db.graph_indices.stats()
        assert stats["entries"] == 1 and stats["hits"] >= 1
        db.execute("INSERT INTO e VALUES (4, 9, 1)")
        stats = db.graph_indices.stats()
        assert stats["entries"] == 0 and stats["invalidations"] >= 1
        # the rebuilt index must see the new edge (no stale-cache read)
        assert db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 9 OVER e EDGE (s, d)"
        ).scalar() == 2

    def test_dml_folds_into_graph_overlay(self, graph_db):
        # overlay on (default): committed DML keeps the cache entry and
        # applies the delta instead of invalidating
        graph_db.execute("CREATE GRAPH INDEX gi ON e EDGE (s, d)")
        assert graph_db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 4 OVER e EDGE (s, d)"
        ).scalar() == 1
        graph_db.execute("INSERT INTO e VALUES (4, 9, 1)")
        stats = graph_db.graph_indices.stats()
        assert stats["overlay_applied"] >= 1
        assert stats["entries"] == 1  # not dropped
        # the merged base+overlay library must see the new edge
        assert graph_db.execute(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 9 OVER e EDGE (s, d)"
        ).scalar() == 2
        assert graph_db.graph_indices.stats()["overlay_hits"] >= 1

    def test_direct_table_mutation_also_invalidates(self, graph_db):
        graph_db.execute("CREATE GRAPH INDEX gi ON e EDGE (s, d)")
        graph_db.execute("SELECT 1 WHERE 1 REACHES 4 OVER e EDGE (s, d)")
        graph_db.table("e").insert_rows([(4, 77, 1)])  # bypass SQL
        assert graph_db.execute(
            "SELECT 1 WHERE 1 REACHES 77 OVER e EDGE (s, d)"
        ).rows() == [(1,)]

    def test_capacity_bound(self):
        db = Database(graph_cache_capacity=2)
        for i in range(4):
            db.execute(f"CREATE TABLE e{i} (s INT, d INT)")
            db.execute(f"INSERT INTO e{i} VALUES (1, 2)")
            db.execute(f"CREATE GRAPH INDEX gi{i} ON e{i} EDGE (s, d)")
        stats = db.graph_indices.stats()
        assert stats["entries"] <= 2
        assert stats["evictions"] >= 2
        # evicted indices still answer correctly (rebuilt on demand)
        assert db.execute(
            "SELECT 1 WHERE 1 REACHES 2 OVER e0 EDGE (s, d)"
        ).rows() == [(1,)]


class TestConcurrentExecution:
    def test_parallel_readers(self, graph_db):
        errors: list[BaseException] = []

        def reader():
            try:
                session = graph_db.connect()
                for _ in range(40):
                    assert session.execute(
                        "SELECT CHEAPEST SUM(k: w) "
                        "WHERE 1 REACHES 4 OVER e k EDGE (s, d)"
                    ).scalar() == 4
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_readers_and_writer_interleave(self, graph_db):
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            try:
                session = graph_db.connect()
                while not stop.is_set():
                    count = session.execute("SELECT count(*) FROM e").scalar()
                    assert count >= 4  # writer only appends
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for t in readers:
            t.start()
        writer = graph_db.connect()
        for i in range(30):
            writer.execute("INSERT INTO e VALUES (?, ?, 1)", (100 + i, 101 + i))
        stop.set()
        for t in readers:
            t.join()
        assert not errors
        assert graph_db.execute("SELECT count(*) FROM e").scalar() == 34


class TestTransactions:
    def test_reads_pin_the_begin_snapshot(self, graph_db):
        reader, writer = graph_db.connect(), graph_db.connect()
        reader.execute("BEGIN")
        assert reader.execute("SELECT count(*) FROM e").scalar() == 4
        writer.execute("INSERT INTO e VALUES (9, 10, 1)")
        # the in-flight transaction keeps reading its snapshot ...
        assert reader.execute("SELECT count(*) FROM e").scalar() == 4
        reader.execute("COMMIT")
        # ... and sees the concurrent write only after leaving it
        assert reader.execute("SELECT count(*) FROM e").scalar() == 5

    def test_read_your_own_writes(self, graph_db):
        with graph_db.connect() as session:
            session.execute("BEGIN")
            session.execute("INSERT INTO e VALUES (9, 10, 1)")
            session.execute("UPDATE e SET w = 7 WHERE s = 9")
            assert session.execute(
                "SELECT w FROM e WHERE s = 9"
            ).scalar() == 7
            # other sessions keep seeing committed state only
            assert graph_db.execute("SELECT count(*) FROM e").scalar() == 4
            session.execute("ROLLBACK")

    def test_rollback_leaves_tables_byte_identical(self, graph_db):
        before_version = graph_db.table("e").current()
        before_rows = graph_db.table("e").to_rows()
        session = graph_db.connect()
        session.execute("BEGIN")
        session.execute("INSERT INTO e VALUES (9, 10, 1)")
        session.execute("DELETE FROM e WHERE w > 5")
        session.execute("UPDATE e SET w = w + 1")
        session.execute("ROLLBACK")
        # the live table was never touched: same version object, same rows
        assert graph_db.table("e").current() is before_version
        assert graph_db.table("e").to_rows() == before_rows

    def test_commit_publishes_buffered_writes(self, graph_db):
        graph_db.execute("CREATE TABLE totals (n INT)")
        session = graph_db.connect()
        session.execute("BEGIN")
        session.execute("INSERT INTO e VALUES (9, 10, 1)")
        session.execute("INSERT INTO totals VALUES (5)")
        session.execute("COMMIT")
        assert graph_db.execute("SELECT count(*) FROM e").scalar() == 5
        assert graph_db.execute("SELECT n FROM totals").scalar() == 5
        assert not session.in_transaction

    def test_write_write_conflict_raises_typed_error(self, graph_db):
        first, second = graph_db.connect(), graph_db.connect()
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute("UPDATE e SET w = 100 WHERE s = 1")
        second.execute("UPDATE e SET w = 200 WHERE s = 1")
        first.execute("COMMIT")  # first committer wins
        with pytest.raises(TransactionConflictError, match="write-write"):
            second.execute("COMMIT")
        # the loser is rolled back; only the winner's write is visible
        assert not second.in_transaction
        assert graph_db.execute(
            "SELECT max(w) FROM e WHERE s = 1"
        ).scalar() == 100
        # and the conflict error is itself a TransactionError
        assert issubclass(TransactionConflictError, TransactionError)

    def test_disjoint_writes_do_not_conflict(self, graph_db):
        graph_db.execute("CREATE TABLE other (x INT)")
        first, second = graph_db.connect(), graph_db.connect()
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute("INSERT INTO e VALUES (9, 10, 1)")
        second.execute("INSERT INTO other VALUES (1)")
        first.execute("COMMIT")
        second.execute("COMMIT")  # different table: no conflict
        assert graph_db.execute("SELECT count(*) FROM other").scalar() == 1

    def test_transaction_statement_misuse(self, graph_db):
        session = graph_db.connect()
        with pytest.raises(TransactionError, match="no transaction"):
            session.execute("COMMIT")
        with pytest.raises(TransactionError, match="no transaction"):
            session.execute("ROLLBACK")
        session.execute("BEGIN")
        with pytest.raises(TransactionError, match="already in progress"):
            session.execute("BEGIN")
        session.execute("ROLLBACK")

    def test_transaction_requires_session(self, graph_db):
        with pytest.raises(TransactionError, match="session"):
            graph_db.execute("BEGIN")

    def test_ddl_rejected_inside_transaction(self, graph_db):
        session = graph_db.connect()
        session.execute("BEGIN")
        with pytest.raises(TransactionError, match="not allowed inside"):
            session.execute("CREATE TABLE nope (x INT)")
        session.execute("ROLLBACK")

    def test_closing_a_session_rolls_back(self, graph_db):
        session = graph_db.connect()
        session.execute("BEGIN")
        session.execute("INSERT INTO e VALUES (9, 10, 1)")
        session.close()
        assert graph_db.execute("SELECT count(*) FROM e").scalar() == 4

    def test_executescript_switches_scope_midstream(self, graph_db):
        session = graph_db.connect()
        session.executescript(
            "BEGIN; INSERT INTO e VALUES (9, 10, 1); ROLLBACK;"
            "BEGIN; INSERT INTO e VALUES (11, 12, 1); COMMIT"
        )
        rows = graph_db.execute("SELECT s FROM e WHERE s >= 9").rows()
        assert rows == [(11,)]

    def test_analyze_inside_transaction_ignores_uncommitted_writes(
        self, graph_db
    ):
        # statistics are shared global state: ANALYZE in a transaction
        # must describe committed data only, or a ROLLBACK would leave
        # phantom statistics behind for every other session
        session = graph_db.connect()
        session.execute("BEGIN")
        session.execute("INSERT INTO e VALUES (9, 10, 1)")
        session.execute("ANALYZE e")
        session.execute("ROLLBACK")
        assert graph_db.table_stats()["e"].row_count == 4

    def test_transaction_writes_do_not_evict_shared_plans(self, graph_db):
        sql = "SELECT count(*) FROM e"
        graph_db.execute(sql)
        assert graph_db.plan_cache.contains(sql)
        with graph_db.connect() as session:
            session.execute("BEGIN")
            session.execute("INSERT INTO e VALUES (9, 10, 1)")
            # reads its own buffered write, but must not overwrite the
            # shared cache slot with a transaction-private plan
            assert session.execute(sql).scalar() == 5
            session.execute("ROLLBACK")
        assert graph_db.plan_cache.contains(sql)
        hits_before = graph_db.plan_cache.stats()["hits"]
        assert graph_db.execute(sql).scalar() == 4
        assert graph_db.plan_cache.stats()["hits"] == hits_before + 1

    def test_cached_plans_inside_transaction_stay_snapshot_consistent(
        self, graph_db
    ):
        sql = "SELECT count(*) FROM e"
        writer = graph_db.connect()
        with graph_db.connect() as reader:
            reader.execute("BEGIN")
            for _ in range(3):  # repeat: exercises the plan-cache path
                assert reader.execute(sql).scalar() == 4
                writer.execute("INSERT INTO e VALUES (9, 10, 1)")
            reader.execute("ROLLBACK")
        assert graph_db.execute(sql).scalar() == 7


class TestSnapshotIsolation:
    """Lock-free readers: long reads never block writers."""

    def test_long_reader_does_not_block_writer(self, graph_db):
        # a transaction's pinned snapshot is the moral equivalent of an
        # arbitrarily long SELECT: it stays open across the writer's
        # whole run, and the writer must finish without waiting on it
        reader = graph_db.connect()
        reader.execute("BEGIN")
        assert reader.execute("SELECT count(*) FROM e").scalar() == 4

        finished = threading.Event()

        def writer():
            session = graph_db.connect()
            for i in range(25):
                session.execute("INSERT INTO e VALUES (?, ?, 1)", (50 + i, 51 + i))
            finished.set()

        thread = threading.Thread(target=writer)
        thread.start()
        thread.join(timeout=30)
        assert finished.is_set(), "writer blocked behind an open snapshot"
        # the reader's view is still its start-of-transaction snapshot
        assert reader.execute("SELECT count(*) FROM e").scalar() == 4
        reader.execute("ROLLBACK")
        assert graph_db.execute("SELECT count(*) FROM e").scalar() == 29

    def test_analyze_does_not_block_writer(self, graph_db):
        # ANALYZE reads its own snapshot: a concurrent writer finishes
        # even while statistics collection is in flight
        stop = threading.Event()
        errors: list[BaseException] = []

        def analyzer():
            session = graph_db.connect()
            try:
                while not stop.is_set():
                    session.execute("ANALYZE e")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=analyzer)
        thread.start()
        writer = graph_db.connect()
        for i in range(50):
            writer.execute("INSERT INTO e VALUES (?, ?, 1)", (70 + i, 71 + i))
        stop.set()
        thread.join(timeout=30)
        assert not thread.is_alive() and not errors
        assert graph_db.execute("SELECT count(*) FROM e").scalar() == 54

    def test_statement_sees_multi_table_commit_fully_or_not_at_all(
        self, graph_db
    ):
        # one statement's snapshot pins all referenced tables under the
        # same mutex COMMIT uses to install its write set
        graph_db.execute("CREATE TABLE a (x INT)")
        graph_db.execute("CREATE TABLE b (x INT)")
        graph_db.execute("INSERT INTO a VALUES (1)")
        graph_db.execute("INSERT INTO b VALUES (1)")
        errors: list[BaseException] = []
        stop = threading.Event()

        def transfer():  # keeps a.count == b.count at every commit
            session = graph_db.connect()
            try:
                for i in range(40):
                    session.execute("BEGIN")
                    session.execute("INSERT INTO a VALUES (?)", (i,))
                    session.execute("INSERT INTO b VALUES (?)", (i,))
                    session.execute("COMMIT")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                stop.set()

        def auditor():
            session = graph_db.connect()
            try:
                while not stop.is_set():
                    counts = session.execute(
                        "SELECT (SELECT count(*) FROM a) - (SELECT count(*) FROM b)"
                    ).scalar()
                    assert counts == 0, "observed a half-installed commit"
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=transfer),
            threading.Thread(target=auditor),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors[:1]


@pytest.mark.stress
class TestSnapshotStress:
    """Churning writers against long snapshot readers.

    Run with ``python -m pytest -m stress tests/test_concurrency.py``.
    """

    WRITERS = 4
    READERS = 4
    WRITES_PER_THREAD = 80

    def test_long_readers_see_repeatable_state_under_churn(self):
        db = Database()
        db.executescript(
            """
            CREATE TABLE ledger (slot INT, amount INT);
            INSERT INTO ledger VALUES (0, 100), (1, 100), (2, 100), (3, 100);
            """
        )
        errors: list[BaseException] = []
        stop = threading.Event()

        def writer(writer_id: int):
            rng = random.Random(writer_id)
            session = db.connect()
            try:
                for i in range(self.WRITES_PER_THREAD):
                    # one UPDATE statement preserves sum(amount): moves
                    # value between slots in a single atomic publish
                    delta = rng.randint(1, 9)
                    session.execute(
                        "UPDATE ledger SET amount = amount + "
                        "CASE WHEN slot = 0 THEN ? "
                        "WHEN slot = 1 THEN -(?) ELSE 0 END",
                        (delta, delta),
                    )
                    if rng.random() < 0.3:
                        session.execute(
                            "INSERT INTO ledger VALUES (?, 0)",
                            (4 + writer_id * 1000 + i,),
                        )
            except TransactionConflictError:
                pass  # autocommit writers never conflict; belt and braces
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def reader():
            session = db.connect()
            try:
                while not stop.is_set():
                    session.execute("BEGIN")
                    first = session.execute(
                        "SELECT sum(amount), count(*) FROM ledger"
                    ).rows()
                    # every statement of the transaction re-reads the
                    # same pinned snapshot: repeatable reads
                    for _ in range(3):
                        again = session.execute(
                            "SELECT sum(amount), count(*) FROM ledger"
                        ).rows()
                        assert again == first, "non-repeatable read"
                    assert first[0][0] == 400, "saw a torn write"
                    session.execute("ROLLBACK")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        reader_threads = [
            threading.Thread(target=reader) for _ in range(self.READERS)
        ]
        writer_threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(self.WRITERS)
        ]
        for t in reader_threads + writer_threads:
            t.start()
        for t in writer_threads:
            t.join()
        stop.set()
        for t in reader_threads:
            t.join()
        assert not errors, errors[:3]
        assert db.execute("SELECT sum(amount) FROM ledger").scalar() == 400

    def test_conflicting_transactions_serialize_cleanly(self):
        db = Database()
        db.execute("CREATE TABLE counter (n INT)")
        db.execute("INSERT INTO counter VALUES (0)")
        committed = []
        lock = threading.Lock()

        def incrementer(thread_id: int):
            session = db.connect()
            for _ in range(40):
                session.execute("BEGIN")
                value = session.execute("SELECT max(n) FROM counter").scalar()
                session.execute("UPDATE counter SET n = ?", (value + 1,))
                try:
                    session.execute("COMMIT")
                except TransactionConflictError:
                    continue  # lost the race; state unchanged
                with lock:
                    committed.append(thread_id)

        threads = [
            threading.Thread(target=incrementer, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # every successful commit incremented from the value it read:
        # first-committer-wins means the final count equals the number
        # of commits that went through (no lost updates)
        assert db.execute("SELECT max(n) FROM counter").scalar() == len(committed)
        assert committed  # at least some transactions won


@pytest.mark.stress
class TestStress:
    """N threads mixing SELECT / INSERT / DELETE / CREATE GRAPH INDEX.

    Run with ``python -m pytest -m stress tests/test_concurrency.py``.
    """

    THREADS = 8
    OPS_PER_THREAD = 120

    def test_mixed_workload_no_crashes_or_stale_reads(self):
        db = Database()
        db.executescript(
            """
            CREATE TABLE e (s INT, d INT, w INT);
            INSERT INTO e VALUES (0, 1, 1), (1, 2, 1), (2, 3, 1);
            """
        )
        errors: list[BaseException] = []

        def worker(worker_id: int):
            rng = random.Random(worker_id)
            session = db.connect()
            try:
                for op in range(self.OPS_PER_THREAD):
                    roll = rng.random()
                    if roll < 0.5:
                        rows = session.execute(
                            "SELECT CHEAPEST SUM(k: w) WHERE ? REACHES ? "
                            "OVER e k EDGE (s, d)",
                            (rng.randint(0, 6), rng.randint(0, 6)),
                        ).rows()
                        if rows:
                            assert rows[0][0] >= 0
                    elif roll < 0.75:
                        a = rng.randint(0, 5)
                        session.execute(
                            "INSERT INTO e VALUES (?, ?, ?)",
                            (a, a + 1, rng.randint(1, 5)),
                        )
                    elif roll < 0.9:
                        session.execute(
                            "DELETE FROM e WHERE s = ? AND w > 3",
                            (rng.randint(0, 5),),
                        )
                    else:
                        name = f"gi_{worker_id}_{op}"
                        session.execute(
                            f"CREATE GRAPH INDEX {name} ON e EDGE (s, d)"
                        )
                        session.execute(f"DROP GRAPH INDEX {name}")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[:3]

        # audit: results after the storm equal a fresh engine's results on
        # the same physical data — caches hold nothing stale
        fresh = Database()
        fresh.execute("CREATE TABLE e (s INT, d INT, w INT)")
        fresh.table("e").insert_rows(db.table("e").to_rows())
        for source in range(7):
            for dest in range(7):
                lhs = db.execute(
                    "SELECT CHEAPEST SUM(k: w) WHERE ? REACHES ? "
                    "OVER e k EDGE (s, d)",
                    (source, dest),
                ).rows()
                rhs = fresh.execute(
                    "SELECT CHEAPEST SUM(k: w) WHERE ? REACHES ? "
                    "OVER e k EDGE (s, d)",
                    (source, dest),
                ).rows()
                assert lhs == rhs

    def test_concurrent_appends_never_lose_rows(self):
        db = Database()
        db.execute("CREATE TABLE log (thread INT, seq INT)")
        per_thread = 150

        def appender(thread_id: int):
            session = db.connect()
            for seq in range(per_thread):
                session.execute("INSERT INTO log VALUES (?, ?)", (thread_id, seq))

        threads = [
            threading.Thread(target=appender, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert db.execute("SELECT count(*) FROM log").scalar() == 6 * per_thread
        # every (thread, seq) pair present exactly once: no torn appends
        assert (
            db.execute("SELECT count(*) FROM (SELECT DISTINCT thread, seq FROM log) t")
            .scalar()
            == 6 * per_thread
        )


@pytest.mark.stress
class TestSharedExecPoolStress:
    """Morsel-driven kernels under concurrent sessions: many threads
    drive group-by/join/distinct queries through one shared worker pool
    (tiny morsels so every statement really fans out) while writers
    churn, and every result must equal the serial-oracle answer.

    Run with ``python -m pytest -m stress tests/test_concurrency.py``.
    """

    def test_readers_on_shared_pool_match_serial_oracle(self):
        import numpy as np

        from repro.storage import Column, DataType

        db = Database(exec_workers=4, morsel_rows=256, parallel_min_rows=0)
        oracle = Database(exec_workers=1)
        rng = np.random.default_rng(42)
        k = rng.integers(0, 31, size=20_000, dtype=np.int64)
        v = rng.random(20_000)
        for engine in (db, oracle):
            engine.execute("CREATE TABLE f (k BIGINT, v DOUBLE)")
            engine.table("f").insert_columns(
                [Column(DataType.BIGINT, k.copy()), Column(DataType.DOUBLE, v.copy())]
            )
        queries = [
            "SELECT k, count(*), sum(v), min(v), max(v) FROM f GROUP BY k ORDER BY k",
            "SELECT DISTINCT k FROM f ORDER BY k",
            "SELECT count(*) FROM f x JOIN f y ON x.k = y.k WHERE x.v < 0.0005",
            "SELECT k FROM f EXCEPT SELECT k FROM f WHERE k < 5 ORDER BY 1",
        ]
        expected = {sql: oracle.execute(sql).rows() for sql in queries}
        errors: list = []

        def reader(seed: int):
            rng_local = random.Random(seed)
            try:
                with db.connect() as session:
                    for _ in range(12):
                        sql = rng_local.choice(queries)
                        assert session.execute(sql).rows() == expected[sql]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_churning_writers_against_parallel_readers(self):
        db = Database(exec_workers=4, morsel_rows=128, parallel_min_rows=0)
        db.execute("CREATE TABLE log (worker INT, seq INT)")
        stop = threading.Event()
        errors: list = []

        def writer(worker_id: int):
            try:
                with db.connect() as session:
                    for seq in range(200):
                        session.execute(
                            "INSERT INTO log VALUES (?, ?)", (worker_id, seq)
                        )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                with db.connect() as session:
                    while not stop.is_set():
                        rows = session.execute(
                            "SELECT worker, count(*) FROM log GROUP BY worker"
                        ).rows()
                        # snapshot reads: per-worker counts are plausible
                        # prefixes, never torn
                        assert all(0 < count <= 200 for _, count in rows)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        writers = [threading.Thread(target=writer, args=(i,)) for i in range(3)]
        readers = [threading.Thread(target=reader) for _ in range(4)]
        for t in writers + readers:
            t.start()
        for t in writers + readers:
            t.join()
        assert errors == []
        assert db.execute("SELECT count(*) FROM log").scalar() == 3 * 200
