"""Unit tests for the SQL parser (standard dialect subset)."""

import pytest

from repro.errors import ParseError
from repro.sql import ast, parse_query, parse_script, parse_statement


class TestSelectCore:
    def test_select_literal(self):
        q = parse_query("SELECT 1")
        assert isinstance(q, ast.Select)
        assert q.items[0].expr == ast.Literal(1)

    def test_select_star(self):
        q = parse_query("SELECT * FROM t")
        assert isinstance(q.items[0].expr, ast.Star)

    def test_qualified_star(self):
        q = parse_query("SELECT t.* FROM t")
        assert q.items[0].expr == ast.Star("t")

    def test_alias_with_as(self):
        q = parse_query("SELECT 1 AS one")
        assert q.items[0].alias == "one"

    def test_alias_without_as(self):
        q = parse_query("SELECT x y FROM t")
        assert q.items[0].alias == "y"

    def test_from_alias(self):
        q = parse_query("SELECT * FROM tbl AS t")
        assert q.from_refs[0] == ast.NamedTableRef("tbl", "t")

    def test_comma_join(self):
        q = parse_query("SELECT * FROM a, b")
        assert len(q.from_refs) == 2

    def test_where(self):
        q = parse_query("SELECT * FROM t WHERE x > 1")
        assert isinstance(q.where, ast.Binary)

    def test_select_without_from_but_with_where(self):
        # the paper's Q13 form (Appendix A.1)
        q = parse_query("SELECT 1 WHERE 1 = 1")
        assert q.from_refs == () and q.where is not None

    def test_distinct(self):
        assert parse_query("SELECT DISTINCT x FROM t").distinct

    def test_group_by_having(self):
        q = parse_query("SELECT g FROM t GROUP BY g HAVING count(*) > 1")
        assert len(q.group_by) == 1 and q.having is not None

    def test_order_limit_offset(self):
        q = parse_query("SELECT x FROM t ORDER BY x DESC LIMIT 5 OFFSET 2")
        assert q.order_by[0].ascending is False
        assert q.limit == 5 and q.offset == 2

    def test_trailing_semicolon(self):
        parse_query("SELECT 1;")

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 SELECT 2")

    def test_missing_expression_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT FROM t")


class TestExpressions:
    def _expr(self, text):
        return parse_query(f"SELECT {text}").items[0].expr

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+" and expr.right.op == "*"

    def test_parens_override(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op == "*" and expr.left.op == "+"

    def test_and_or_precedence(self):
        expr = parse_query("SELECT * FROM t WHERE a OR b AND c").where
        assert expr.op == "or" and expr.right.op == "and"

    def test_not(self):
        expr = parse_query("SELECT * FROM t WHERE NOT a = 1").where
        assert expr.op == "not"

    def test_concat(self):
        expr = self._expr("a || b || c")
        assert expr.op == "||" and expr.left.op == "||"

    def test_comparison_bang_eq_normalized(self):
        expr = parse_query("SELECT * FROM t WHERE a != b").where
        assert expr.op == "<>"

    def test_between(self):
        expr = parse_query("SELECT * FROM t WHERE x BETWEEN 1 AND 3").where
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        expr = parse_query("SELECT * FROM t WHERE x NOT BETWEEN 1 AND 3").where
        assert expr.negated

    def test_in_list(self):
        expr = parse_query("SELECT * FROM t WHERE x IN (1, 2)").where
        assert isinstance(expr, ast.InList) and len(expr.items) == 2

    def test_in_subquery(self):
        expr = parse_query("SELECT * FROM t WHERE x IN (SELECT y FROM u)").where
        assert isinstance(expr, ast.InSubquery)

    def test_not_in_subquery(self):
        expr = parse_query("SELECT * FROM t WHERE x NOT IN (SELECT y FROM u)").where
        assert isinstance(expr, ast.InSubquery) and expr.negated

    def test_is_null(self):
        expr = parse_query("SELECT * FROM t WHERE x IS NULL").where
        assert isinstance(expr, ast.IsNull) and not expr.negated

    def test_is_not_null(self):
        expr = parse_query("SELECT * FROM t WHERE x IS NOT NULL").where
        assert expr.negated

    def test_like(self):
        expr = parse_query("SELECT * FROM t WHERE x LIKE 'a%'").where
        assert isinstance(expr, ast.Like)

    def test_case_searched(self):
        expr = self._expr("CASE WHEN a THEN 1 ELSE 2 END")
        assert isinstance(expr, ast.Case) and expr.operand is None

    def test_case_simple(self):
        expr = self._expr("CASE x WHEN 1 THEN 'a' END")
        assert expr.operand is not None and expr.else_ is None

    def test_case_without_when_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT CASE ELSE 1 END")

    def test_cast(self):
        expr = self._expr("CAST(x AS bigint)")
        assert isinstance(expr, ast.Cast) and expr.type_name == "bigint"

    def test_function_call(self):
        expr = self._expr("coalesce(a, b, 0)")
        assert isinstance(expr, ast.FuncCall) and len(expr.args) == 3

    def test_count_star(self):
        expr = self._expr("count(*)")
        assert expr.name == "count" and isinstance(expr.args[0], ast.Star)

    def test_count_distinct(self):
        expr = self._expr("count(DISTINCT x)")
        assert expr.distinct

    def test_sum_keyword_still_parses_as_aggregate(self):
        expr = self._expr("SUM(x)")
        assert expr == ast.FuncCall("sum", (ast.ColumnRef(None, "x"),), False)

    def test_unary_minus(self):
        expr = self._expr("-x")
        assert isinstance(expr, ast.Unary) and expr.op == "-"

    def test_unary_plus_is_dropped(self):
        assert self._expr("+x") == ast.ColumnRef(None, "x")

    def test_params_numbered_in_order(self):
        q = parse_query("SELECT ? WHERE ? = ?")
        params = [q.items[0].expr, q.where.left, q.where.right]
        assert [p.index for p in params] == [0, 1, 2]

    def test_scalar_subquery(self):
        expr = self._expr("(SELECT max(x) FROM t)")
        assert isinstance(expr, ast.ScalarSubquery)

    def test_exists(self):
        expr = parse_query("SELECT * FROM t WHERE EXISTS (SELECT 1)").where
        assert isinstance(expr, ast.Exists)


class TestJoins:
    def test_inner_join(self):
        q = parse_query("SELECT * FROM a JOIN b ON a.x = b.y")
        join = q.from_refs[0]
        assert isinstance(join, ast.JoinRef) and join.kind == "inner"

    def test_left_join(self):
        q = parse_query("SELECT * FROM a LEFT JOIN b ON a.x = b.y")
        assert q.from_refs[0].kind == "left"

    def test_left_outer_join(self):
        q = parse_query("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y")
        assert q.from_refs[0].kind == "left"

    def test_cross_join(self):
        q = parse_query("SELECT * FROM a CROSS JOIN b")
        assert q.from_refs[0].kind == "cross" and q.from_refs[0].condition is None

    def test_chained_joins_left_deep(self):
        q = parse_query("SELECT * FROM a JOIN b ON 1=1 JOIN c ON 2=2")
        outer = q.from_refs[0]
        assert isinstance(outer.left, ast.JoinRef)

    def test_derived_table(self):
        q = parse_query("SELECT * FROM (SELECT 1) AS d")
        assert isinstance(q.from_refs[0], ast.DerivedTableRef)

    def test_derived_table_column_aliases(self):
        q = parse_query("SELECT * FROM (SELECT 1, 2) AS d (a, b)")
        assert q.from_refs[0].column_aliases == ("a", "b")


class TestSetOpsAndCtes:
    def test_union(self):
        q = parse_query("SELECT 1 UNION SELECT 2")
        assert isinstance(q, ast.SetOp) and q.op == "union" and not q.all

    def test_union_all(self):
        assert parse_query("SELECT 1 UNION ALL SELECT 2").all

    def test_except_intersect(self):
        assert parse_query("SELECT 1 EXCEPT SELECT 2").op == "except"
        assert parse_query("SELECT 1 INTERSECT SELECT 2").op == "intersect"

    def test_with_cte(self):
        q = parse_query("WITH c AS (SELECT 1) SELECT * FROM c")
        assert q.ctes[0].name == "c" and not q.recursive

    def test_with_recursive(self):
        q = parse_query(
            "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL SELECT n+1 FROM r) "
            "SELECT * FROM r"
        )
        assert q.recursive and q.ctes[0].column_names == ("n",)

    def test_multiple_ctes(self):
        q = parse_query("WITH a AS (SELECT 1), b AS (SELECT 2) SELECT * FROM a, b")
        assert len(q.ctes) == 2

    def test_order_by_after_setop(self):
        q = parse_query("SELECT 1 UNION SELECT 2 ORDER BY 1 LIMIT 1")
        assert q.order_by and q.limit == 1


class TestStatements:
    def test_create_table(self):
        stmt = parse_statement("CREATE TABLE t (a INT, b VARCHAR(40))")
        assert isinstance(stmt, ast.CreateTable)
        assert [c.name for c in stmt.columns] == ["a", "b"]

    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE t")
        assert isinstance(stmt, ast.DropTable) and stmt.name == "t"

    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.InsertValues) and len(stmt.rows) == 2

    def test_insert_with_columns(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT * FROM u")
        assert isinstance(stmt, ast.InsertSelect)

    def test_create_graph_index(self):
        stmt = parse_statement("CREATE GRAPH INDEX gi ON friends EDGE (src, dst)")
        assert isinstance(stmt, ast.CreateGraphIndex)
        assert (stmt.table, stmt.src_col, stmt.dst_col) == ("friends", "src", "dst")

    def test_drop_graph_index(self):
        stmt = parse_statement("DROP GRAPH INDEX gi")
        assert isinstance(stmt, ast.DropGraphIndex)

    def test_script(self):
        statements = parse_script("SELECT 1; SELECT 2;")
        assert len(statements) == 2

    def test_explain_statement(self):
        stmt = parse_statement("EXPLAIN SELECT 1")
        assert isinstance(stmt, ast.Explain)

    def test_not_a_statement_raises(self):
        with pytest.raises(ParseError):
            parse_statement("VACUUM t")
