"""The shipped examples run cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "fewest hops AMS -> SFO: 2" in proc.stdout
        assert "leg 1" in proc.stdout

    def test_transport_routing(self):
        proc = run_example("transport_routing.py")
        assert proc.returncode == 0, proc.stderr
        assert "fastest route" in proc.stdout
        assert "graph index" in proc.stdout

    def test_dependency_analysis(self):
        proc = run_example("dependency_analysis.py")
        assert proc.returncode == 0, proc.stderr
        assert "util.h is 3 dependency levels below app" in proc.stdout
        assert "WITH RECURSIVE baseline: 3 hops" in proc.stdout

    def test_ldbc_social_network_small(self):
        proc = run_example(
            "ldbc_social_network.py", "--sf", "1", "--scale", "0.005", "--pairs", "4"
        )
        assert proc.returncode == 0, proc.stderr
        assert "Q13" in proc.stdout and "batched" in proc.stdout

    def test_ldbc_table1(self):
        proc = run_example("ldbc_social_network.py", "--table1", "--scale", "0.002")
        assert proc.returncode == 0, proc.stderr
        assert "scale_factor" in proc.stdout

    def test_reproduce_paper_tiny(self):
        proc = run_example(
            "reproduce_paper.py", "--scale", "0.004", "--pairs", "3"
        )
        assert proc.returncode == 0, proc.stderr
        for marker in ("Table 1", "Figure 1a", "Figure 1b", "A2", "A3", "A6"):
            assert marker in proc.stdout
