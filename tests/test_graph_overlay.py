"""Incremental graph-index maintenance: the CSR delta overlay vs the
full-rebuild oracle.

``Database(graph_overlay=False)`` preserves the pre-overlay behavior
wholesale — every committed write drops the cached CSR and the next
query rebuilds from scratch — and is the correctness oracle here: after
any randomized churn of inserts / deletes / updates, both engines must
report identical costs (and Bellman-Ford must agree).  Paths are
compared by *validity and cost*, not byte equality: vertex ids are
assigned in different orders by the two builds, so equal-cost ties may
resolve to different (equally correct) paths.
"""

from __future__ import annotations

import random
import time

import numpy as np
import pytest

from repro import Database
from test_path_reference import bellman_ford

EDGE_DDL = "CREATE TABLE edges (s BIGINT, d BIGINT, w INTEGER)"
Q13 = "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER edges EDGE (s, d)"
Q14 = (
    "SELECT CHEAPEST SUM(e: w) WHERE ? REACHES ? OVER edges e EDGE (s, d)"
)
Q14_PATH = (
    "SELECT CHEAPEST SUM(e: w) AS (cost, path) "
    "WHERE ? REACHES ? OVER edges e EDGE (s, d)"
)


def scalar(db: Database, sql: str, params) -> object:
    rows = db.execute(sql, params).rows()
    return rows[0][0] if rows else None


def engine_pair(**overlay_kwargs):
    over = Database(**overlay_kwargs)
    base = Database(graph_overlay=False)
    for db in (over, base):
        db.execute(EDGE_DDL)
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
    return over, base


def live_edges(db: Database):
    return [
        (int(s), int(d), int(w))
        for s, d, w in db.execute("SELECT s, d, w FROM edges").rows()
        if s is not None and d is not None
    ]


# ---------------------------------------------------------------------------
# randomized churn vs full rebuild + Bellman-Ford
# ---------------------------------------------------------------------------
class TestChurnOracle:
    N_VERTICES = 24

    def _insert(self, rng, dbs):
        rows = []
        for _ in range(rng.randint(1, 8)):
            s = rng.randrange(self.N_VERTICES) if rng.random() > 0.06 else None
            d = rng.randrange(self.N_VERTICES) if rng.random() > 0.06 else None
            rows.append((s, d, rng.randint(1, 9)))
        values = ", ".join(
            "(%s, %s, %s)"
            % tuple("NULL" if v is None else str(v) for v in row)
            for row in rows
        )
        for db in dbs:
            db.execute(f"INSERT INTO edges VALUES {values}")

    def _delete(self, rng, dbs):
        predicate = rng.choice(
            [
                f"w = {rng.randint(1, 9)}",
                f"s = {rng.randrange(self.N_VERTICES)}",
                f"d >= {rng.randrange(self.N_VERTICES)} "
                f"AND w <= {rng.randint(1, 9)}",
                "s IS NULL",
            ]
        )
        counts = {
            db.execute(f"DELETE FROM edges WHERE {predicate}").rowcount
            for db in dbs
        }
        assert len(counts) == 1  # both engines dropped the same rows

    def _update(self, rng, dbs):
        if rng.random() < 0.5:  # weight only: edge set unchanged
            sql = (
                f"UPDATE edges SET w = {rng.randint(1, 9)} "
                f"WHERE s = {rng.randrange(self.N_VERTICES)}"
            )
        else:  # rewires endpoints: overlay must not serve stale CSR
            sql = (
                f"UPDATE edges SET d = {rng.randrange(self.N_VERTICES)} "
                f"WHERE w = {rng.randint(1, 9)}"
            )
        for db in dbs:
            db.execute(sql)

    def _compare_random_pairs(self, rng, over, base, *, samples=6):
        edges = live_edges(base)
        assert live_edges(over) == edges  # table contents identical
        endpoints = sorted({v for s, d, _ in edges for v in (s, d)})
        reference = {}
        for _ in range(samples):
            src = rng.randrange(self.N_VERTICES)
            dst = rng.randrange(self.N_VERTICES)
            assert scalar(over, Q13, (src, dst)) == scalar(
                base, Q13, (src, dst)
            )
            got = scalar(over, Q14, (src, dst))
            assert got == scalar(base, Q14, (src, dst))
            if src in endpoints and src != dst:
                if src not in reference:
                    ids = {v: i for i, v in enumerate(endpoints)}
                    reference[src] = bellman_ford(
                        len(endpoints),
                        [(ids[s], ids[d], w) for s, d, w in edges],
                        ids[src],
                    )
                want = (
                    reference[src][endpoints.index(dst)]
                    if dst in endpoints
                    else None
                )
                assert got == want

    @pytest.mark.parametrize("seed", range(6))
    def test_churn_matches_full_rebuild(self, seed):
        rng = random.Random(1000 + seed)
        threshold = rng.choice([3, 50, 100_000])
        over, base = engine_pair(
            graph_compact_threshold=threshold, graph_compact_mode="eager"
        )
        dbs = (over, base)
        for _ in range(30):
            roll = rng.random()
            if roll < 0.5:
                self._insert(rng, dbs)
            elif roll < 0.7:
                self._delete(rng, dbs)
            elif roll < 0.8:
                self._update(rng, dbs)
            else:
                self._compare_random_pairs(rng, over, base, samples=3)
        self._compare_random_pairs(rng, over, base, samples=12)
        over.close()
        base.close()

    def test_paths_valid_through_overlay(self):
        over, base = engine_pair(graph_compact_threshold=100_000)
        rng = random.Random(7)
        self._insert(rng, (over, base))
        over.execute("SELECT 1 WHERE 0 REACHES 1 OVER edges EDGE (s, d)")
        for _ in range(6):
            self._insert(rng, (over, base))
        self._delete(rng, (over, base))
        assert over.graph_indices.stats()["overlay_applied"] > 0
        edges = set(live_edges(over))
        endpoints = sorted({v for s, d, _ in edges for v in (s, d)})
        checked = 0
        for src in endpoints[:6]:
            for dst in endpoints[:6]:
                if src == dst:
                    continue
                cost = scalar(over, Q14, (src, dst))
                assert cost == scalar(base, Q14, (src, dst))
                if cost is None:
                    continue
                rows = over.execute(
                    "SELECT T.cost, R.s, R.d, R.w FROM ("
                    + Q14_PATH.replace("?", "%d" % src, 1).replace(
                        "?", "%d" % dst, 1
                    )
                    + ") T, UNNEST(T.path) AS R"
                ).rows()
                if not rows:
                    continue  # zero-hop path (src == dst) unnests empty
                hops = [(int(s), int(d), int(w)) for _, s, d, w in rows]
                assert rows[0][0] == cost
                assert sum(w for _, _, w in hops) == cost
                assert hops[0][0] == src and hops[-1][1] == dst
                for (_, mid, _), (nxt, _, _) in zip(hops, hops[1:]):
                    assert mid == nxt
                for hop in hops:
                    assert hop in edges  # every hop is a live table row
                checked += 1
        assert checked > 0
        over.close()
        base.close()


# ---------------------------------------------------------------------------
# overlay bookkeeping: hits, applies, compaction
# ---------------------------------------------------------------------------
class TestOverlayLifecycle:
    def test_append_applies_without_rebuild(self):
        db = Database()
        db.execute(EDGE_DDL)
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        db.execute("INSERT INTO edges VALUES (1, 2, 1)")
        assert scalar(db, Q13, (1, 2)) == 1
        builds = db.graph_indices.stats()["builds"]
        db.execute("INSERT INTO edges VALUES (2, 3, 1)")
        assert scalar(db, Q13, (1, 3)) == 2
        stats = db.graph_indices.stats()
        assert stats["builds"] == builds  # merged overlay, no fresh CSR
        assert stats["overlay_applied"] >= 1
        assert stats["overlay_hits"] >= 1
        db.close()

    def test_eager_compaction_past_threshold(self):
        db = Database(graph_compact_threshold=3, graph_compact_mode="eager")
        db.execute(EDGE_DDL)
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        db.execute("INSERT INTO edges VALUES (0, 1, 1)")
        assert scalar(db, Q13, (0, 1)) == 1
        for i in range(1, 5):
            db.execute(f"INSERT INTO edges VALUES ({i}, {i + 1}, 1)")
        assert scalar(db, Q13, (0, 5)) == 5  # compacts on this lookup
        stats = db.graph_indices.stats()
        assert stats["overlay_merges"] >= 1
        assert stats["entries"] == 1
        info = db.graph_overlay_info()["indices"]["gi"]
        assert info["overlay_edges"] == 0 and info["tombstones"] == 0
        db.close()

    def test_off_mode_never_compacts(self):
        db = Database(graph_compact_threshold=2, graph_compact_mode="off")
        db.execute(EDGE_DDL)
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        db.execute("INSERT INTO edges VALUES (0, 1, 1)")
        assert scalar(db, Q13, (0, 1)) == 1
        for i in range(1, 6):
            db.execute(f"INSERT INTO edges VALUES ({i}, {i + 1}, 1)")
        assert scalar(db, Q13, (0, 6)) == 6
        stats = db.graph_indices.stats()
        assert stats["overlay_merges"] == 0
        assert db.graph_overlay_info()["indices"]["gi"]["overlay_edges"] == 6
        db.close()

    def test_background_compaction(self):
        db = Database(
            graph_compact_threshold=2, graph_compact_mode="background"
        )
        db.execute(EDGE_DDL)
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        db.execute("INSERT INTO edges VALUES (0, 1, 1)")
        assert scalar(db, Q13, (0, 1)) == 1
        for i in range(1, 6):
            db.execute(f"INSERT INTO edges VALUES ({i}, {i + 1}, 1)")
        deadline = time.time() + 10.0
        while time.time() < deadline:
            info = db.graph_overlay_info()["indices"].get("gi")
            if info and info["overlay_edges"] == 0:
                break
            time.sleep(0.02)
        assert db.graph_indices.stats()["overlay_merges"] >= 1
        assert scalar(db, Q13, (0, 6)) == 6  # compacted CSR, same answers
        db.close()

    def test_compaction_mid_query_stream(self):
        # alternate writes and queries so compaction interleaves lookups
        db = Database(graph_compact_threshold=2, graph_compact_mode="eager")
        db.execute(EDGE_DDL)
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        for i in range(12):
            db.execute(f"INSERT INTO edges VALUES ({i}, {i + 1}, 1)")
            assert scalar(db, Q13, (0, i + 1)) == i + 1
            if i % 3 == 2:
                db.execute(f"DELETE FROM edges WHERE s = {i - 1}")
                assert scalar(db, Q13, (0, i + 1)) is None
                db.execute(f"INSERT INTO edges VALUES ({i - 1}, {i}, 1)")
        assert db.graph_indices.stats()["overlay_merges"] >= 1
        db.close()

    def test_overlay_survives_weight_only_update(self):
        db = Database(graph_compact_threshold=100_000)
        db.execute(EDGE_DDL)
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        db.execute("INSERT INTO edges VALUES (1, 2, 5), (2, 3, 5)")
        assert scalar(db, Q14, (1, 3)) == 10
        invalidations = db.graph_indices.stats()["invalidations"]
        db.execute("UPDATE edges SET w = 1 WHERE s = 1")
        # weights are attached per statement: no CSR change, no rebuild
        assert scalar(db, Q14, (1, 3)) == 6
        assert db.graph_indices.stats()["invalidations"] == invalidations
        db.close()

    def test_explain_footer_reports_overlay(self):
        db = Database()
        db.execute(EDGE_DDL)
        db.execute("INSERT INTO edges VALUES (1, 2, 1)")
        text = db.explain(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 2 OVER edges EDGE (s, d)"
        )
        assert "graph overlay:" in text
        db.close()

    def test_overlay_disabled_has_no_footer_line(self):
        db = Database(graph_overlay=False)
        db.execute(EDGE_DDL)
        db.execute("INSERT INTO edges VALUES (1, 2, 1)")
        text = db.explain(
            "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 2 OVER edges EDGE (s, d)"
        )
        assert "graph overlay:" not in text
        db.close()


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------
class TestOverlayPersistence:
    def _seed(self, db):
        db.execute(EDGE_DDL)
        db.execute("INSERT INTO edges VALUES (1, 2, 1), (2, 3, 2)")
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        assert scalar(db, Q13, (1, 3)) == 2

    def test_save_compacts_live_overlay(self, tmp_path):
        db = Database(graph_compact_threshold=100_000)
        self._seed(db)
        db.execute("INSERT INTO edges VALUES (3, 4, 1)")
        assert scalar(db, Q13, (1, 4)) == 3  # served from the overlay
        assert db.graph_overlay_info()["indices"]["gi"]["overlay_edges"] == 1
        db.save(str(tmp_path / "image"))
        loaded = Database.load(str(tmp_path / "image"))
        # the image holds a canonical CSR: the seeded index answers
        # without a build, including the edge that lived in the overlay
        builds = loaded.graph_indices.stats()["builds"]
        assert scalar(loaded, Q13, (1, 4)) == 3
        assert loaded.graph_indices.stats()["builds"] == builds
        db.close()
        loaded.close()

    def test_loaded_database_accumulates_fresh_overlay(self, tmp_path):
        db = Database()
        self._seed(db)
        db.save(str(tmp_path / "image"))
        db.close()
        loaded = Database.load(str(tmp_path / "image"))
        assert scalar(loaded, Q13, (1, 3)) == 2  # seeded, no build
        loaded.execute("INSERT INTO edges VALUES (3, 9, 1)")
        assert scalar(loaded, Q13, (1, 9)) == 3
        stats = loaded.graph_indices.stats()
        assert stats["overlay_applied"] >= 1
        loaded.close()

    def test_overlay_off_round_trip(self, tmp_path):
        db = Database(graph_overlay=False)
        self._seed(db)
        db.save(str(tmp_path / "image"))
        db.close()
        loaded = Database.load(str(tmp_path / "image"), graph_overlay=False)
        assert scalar(loaded, Q13, (1, 3)) == 2
        loaded.execute("INSERT INTO edges VALUES (3, 9, 1)")
        assert scalar(loaded, Q13, (1, 9)) == 3
        loaded.close()


# ---------------------------------------------------------------------------
# appender / COPY feed the overlay
# ---------------------------------------------------------------------------
class TestBulkIngestIntoOverlay:
    def test_appender_batch_folds_in(self):
        db = Database(graph_compact_threshold=100_000)
        db.execute(EDGE_DDL)
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        db.execute("INSERT INTO edges VALUES (0, 1, 1)")
        assert scalar(db, Q13, (0, 1)) == 1
        builds = db.graph_indices.stats()["builds"]
        chain = np.arange(1, 2000, dtype=np.int64)
        db.appender("edges").append(
            {"s": chain, "d": chain + 1, "w": np.ones(len(chain), np.int64)}
        )
        assert scalar(db, Q13, (0, 2000)) == 2000
        stats = db.graph_indices.stats()
        assert stats["builds"] == builds
        # base CSR was built at CREATE GRAPH INDEX (empty table), so the
        # single row INSERT and the whole bulk batch live in the overlay
        assert (
            db.graph_overlay_info()["indices"]["gi"]["overlay_edges"]
            == len(chain) + 1
        )
        db.close()

    def test_transactional_append_applies_on_commit(self):
        db = Database()
        db.execute(EDGE_DDL)
        db.execute("CREATE GRAPH INDEX gi ON edges EDGE (s, d)")
        db.execute("INSERT INTO edges VALUES (0, 1, 1)")
        assert scalar(db, Q13, (0, 1)) == 1
        with db.connect() as session:
            session.begin()
            session.appender("edges").append({"s": [1], "d": [2], "w": [1]})
            session.commit()
        # COMMIT installs a full replacement version (not an append), so
        # the overlay cannot interpret it: correctness over cleverness
        assert scalar(db, Q13, (0, 2)) == 2
        db.close()
