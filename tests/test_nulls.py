"""SQL NULL semantics: three-valued logic, null propagation, null ordering."""

import pytest

from repro import Database


@pytest.fixture
def db():
    database = Database()
    database.executescript(
        """
        CREATE TABLE t (a INT, b INT);
        INSERT INTO t VALUES (1, 10), (2, NULL), (NULL, 30), (NULL, NULL);
        """
    )
    return database


class TestComparisons:
    def test_null_comparison_filters_out(self, db):
        # NULL = anything is UNKNOWN, never satisfied
        assert db.execute("SELECT count(*) FROM t WHERE a = a").scalar() == 2

    def test_null_not_equal_also_unknown(self, db):
        assert db.execute("SELECT count(*) FROM t WHERE a <> 1").scalar() == 1

    def test_is_null(self, db):
        assert db.execute("SELECT count(*) FROM t WHERE a IS NULL").scalar() == 2

    def test_is_not_null(self, db):
        assert db.execute("SELECT count(*) FROM t WHERE a IS NOT NULL").scalar() == 2

    def test_null_literal_is_null(self, db):
        assert db.execute("SELECT count(*) FROM t WHERE NULL IS NULL").scalar() == 4


class TestKleeneLogic:
    def test_unknown_and_false_is_false(self, db):
        # rows with a IS NULL: (a = 1) is UNKNOWN; UNKNOWN AND FALSE = FALSE
        count = db.execute(
            "SELECT count(*) FROM t WHERE a = 1 AND 1 = 2"
        ).scalar()
        assert count == 0

    def test_unknown_or_true_is_true(self, db):
        count = db.execute("SELECT count(*) FROM t WHERE a = 1 OR 1 = 1").scalar()
        assert count == 4

    def test_unknown_or_false_is_unknown(self, db):
        count = db.execute("SELECT count(*) FROM t WHERE a = 1 OR 1 = 2").scalar()
        assert count == 1

    def test_not_unknown_is_unknown(self, db):
        count = db.execute("SELECT count(*) FROM t WHERE NOT a = 1").scalar()
        assert count == 1  # only a=2 passes; NULLs stay unknown


class TestNullPropagation:
    def test_arithmetic_propagates(self, db):
        rows = db.execute("SELECT a + b FROM t ORDER BY a").rows()
        assert rows.count((None,)) == 3

    def test_concat_null_propagates(self, db):
        # standard SQL: string concatenation with NULL yields NULL
        rows = db.execute("SELECT 'x' || NULL").rows()
        assert rows == [(None,)]

    def test_coalesce_picks_first_non_null(self, db):
        rows = db.execute("SELECT coalesce(a, b, 0) FROM t ORDER BY 1").rows()
        assert [r[0] for r in rows] == [0, 1, 2, 30]

    def test_in_list_with_null_operand(self, db):
        assert db.execute("SELECT count(*) FROM t WHERE a IN (1, 2)").scalar() == 2

    def test_not_in_list_with_null_item(self, db):
        # a NOT IN (1, NULL) is never TRUE for a<>1 (comparison UNKNOWN)
        assert db.execute(
            "SELECT count(*) FROM t WHERE a NOT IN (1, NULL)"
        ).scalar() == 0

    def test_case_null_condition_falls_through(self, db):
        rows = db.execute(
            "SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'other' END FROM t"
        ).rows()
        assert [r[0] for r in rows] == ["pos", "pos", "other", "other"]


class TestAggregatesOverNulls:
    def test_count_star_vs_count_column(self, db):
        rows = db.execute("SELECT count(*), count(a), count(b) FROM t").rows()
        assert rows == [(4, 2, 2)]

    def test_sum_ignores_nulls(self, db):
        assert db.execute("SELECT sum(a) FROM t").scalar() == 3

    def test_avg_ignores_nulls(self, db):
        assert db.execute("SELECT avg(b) FROM t").scalar() == 20.0

    def test_all_null_group_sum_is_null(self, db):
        assert db.execute("SELECT sum(a) FROM t WHERE a IS NULL").scalar() is None

    def test_distinct_treats_nulls_as_one(self, db):
        rows = db.execute("SELECT DISTINCT a FROM t ORDER BY a").rows()
        assert rows.count((None,)) == 1
